#include "moa/parser.h"

#include <cctype>
#include <cstdlib>

namespace moaflat::moa {
namespace {

/// Token categories of the MOA surface syntax.
enum class Tok {
  kEnd,
  kIdent,    // names, keywords, class names (may contain '#')
  kOp,       // = != < <= > >= + - * /
  kInt,
  kFloat,
  kChar,     // 'R'
  kString,   // "text"
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLAngleTup,  // '<' opening a tuple constructor (disambiguated in parser)
  kRAngleTup,
  kComma,
  kColon,
  kPercent,
  kDot,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (i_ >= src_.size()) break;
      const size_t start = i_;
      const char c = src_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string id;
        while (i_ < src_.size() && (std::isalnum(static_cast<unsigned char>(
                                        src_[i_])) ||
                                    src_[i_] == '_' || src_[i_] == '#')) {
          id += src_[i_++];
        }
        out.push_back({Tok::kIdent, id, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num;
        bool is_float = false;
        while (i_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[i_])) ||
                src_[i_] == '.')) {
          // A '.' followed by a non-digit is path syntax, not a decimal.
          if (src_[i_] == '.' &&
              (i_ + 1 >= src_.size() ||
               !std::isdigit(static_cast<unsigned char>(src_[i_ + 1])))) {
            break;
          }
          if (src_[i_] == '.') is_float = true;
          num += src_[i_++];
        }
        out.push_back({is_float ? Tok::kFloat : Tok::kInt, num, start});
        continue;
      }
      switch (c) {
        case '\'': {
          if (i_ + 2 >= src_.size() || src_[i_ + 2] != '\'') {
            return Status::ParseError("bad char literal at " +
                                      std::to_string(i_));
          }
          out.push_back({Tok::kChar, std::string(1, src_[i_ + 1]), start});
          i_ += 3;
          continue;
        }
        case '"': {
          std::string s;
          ++i_;
          while (i_ < src_.size() && src_[i_] != '"') s += src_[i_++];
          if (i_ >= src_.size()) {
            return Status::ParseError("unterminated string literal");
          }
          ++i_;
          out.push_back({Tok::kString, s, start});
          continue;
        }
        case '(':
          out.push_back({Tok::kLParen, "(", start});
          ++i_;
          continue;
        case ')':
          out.push_back({Tok::kRParen, ")", start});
          ++i_;
          continue;
        case '[':
          out.push_back({Tok::kLBracket, "[", start});
          ++i_;
          continue;
        case ']':
          out.push_back({Tok::kRBracket, "]", start});
          ++i_;
          continue;
        case ',':
          out.push_back({Tok::kComma, ",", start});
          ++i_;
          continue;
        case ':':
          out.push_back({Tok::kColon, ":", start});
          ++i_;
          continue;
        case '%':
          out.push_back({Tok::kPercent, "%", start});
          ++i_;
          continue;
        case '.':
          out.push_back({Tok::kDot, ".", start});
          ++i_;
          continue;
        case '=':
          out.push_back({Tok::kOp, "=", start});
          ++i_;
          continue;
        case '!':
          if (i_ + 1 < src_.size() && src_[i_ + 1] == '=') {
            out.push_back({Tok::kOp, "!=", start});
            i_ += 2;
            continue;
          }
          return Status::ParseError("unexpected '!'");
        case '<':
        case '>': {
          // '<' may start a tuple constructor or be a comparison operator:
          // a comparison is always immediately followed by '(' (prefix
          // syntax), optionally after '='.
          std::string op(1, c);
          size_t j = i_ + 1;
          if (j < src_.size() && src_[j] == '=') {
            op += '=';
            ++j;
          }
          size_t k = j;
          while (k < src_.size() &&
                 std::isspace(static_cast<unsigned char>(src_[k]))) {
            ++k;
          }
          if (k < src_.size() && src_[k] == '(') {
            out.push_back({Tok::kOp, op, start});
            i_ = j;
          } else if (c == '<') {
            out.push_back({Tok::kLAngleTup, "<", start});
            ++i_;
          } else {
            out.push_back({Tok::kRAngleTup, ">", start});
            ++i_;
          }
          continue;
        }
        case '+':
        case '*':
        case '/':
          out.push_back({Tok::kOp, std::string(1, c), start});
          ++i_;
          continue;
        case '-': {
          out.push_back({Tok::kOp, "-", start});
          ++i_;
          continue;
        }
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at " + std::to_string(i_));
      }
    }
    out.push_back({Tok::kEnd, "", src_.size()});
    return out;
  }

 private:
  void SkipSpace() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
  }

  const std::string& src_;
  size_t i_ = 0;
};

bool IsAlgebraKeyword(const std::string& id) {
  return id == "select" || id == "project" || id == "nest" ||
         id == "unnest" || id == "union" || id == "difference" ||
         id == "intersection";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<ExprPtr> Parse() {
    MF_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != Tok::kEnd) {
      return Status::ParseError("trailing input after expression at " +
                                std::to_string(Peek().pos));
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  Token Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::ParseError(std::string("expected ") + what + " at " +
                                std::to_string(Peek().pos) + ", got '" +
                                Peek().text + "'");
    }
    Next();
    return Status::OK();
  }

  Result<ExprPtr> ParseExpr() {
    const Token& t = Peek();
    switch (t.kind) {
      case Tok::kIdent:
        if (IsAlgebraKeyword(t.text)) return ParseAlgebraOp();
        if (Peek(1).kind == Tok::kLParen) return ParseCall(Next().text);
        return ParsePathFrom(Next().text);
      case Tok::kOp: {
        const std::string op = Next().text;
        return ParseCall(op);
      }
      case Tok::kPercent: {
        Next();
        if (Peek().kind == Tok::kInt) {
          auto e = Expr::Make(Expr::Kind::kTupleIdx);
          e->index = std::atoi(Next().text.c_str());
          return e;
        }
        MF_RETURN_NOT_OK(Expect(Tok::kIdent, "attribute name after '%'"));
        return ParsePathFrom(toks_[pos_ - 1].text);
      }
      case Tok::kInt: {
        auto e = Expr::Make(Expr::Kind::kLiteral);
        e->lit = Value::Int(std::atoi(Next().text.c_str()));
        return e;
      }
      case Tok::kFloat: {
        auto e = Expr::Make(Expr::Kind::kLiteral);
        e->lit = Value::Dbl(std::atof(Next().text.c_str()));
        return e;
      }
      case Tok::kChar: {
        auto e = Expr::Make(Expr::Kind::kLiteral);
        e->lit = Value::Chr(Next().text[0]);
        return e;
      }
      case Tok::kString: {
        auto e = Expr::Make(Expr::Kind::kLiteral);
        const std::string s = Next().text;
        Date d;
        if (Date::Parse(s, &d) && s.size() == 10) {
          e->lit = Value::MakeDate(d);
        } else {
          e->lit = Value::Str(s);
        }
        return e;
      }
      default:
        return Status::ParseError("unexpected token '" + t.text + "' at " +
                                  std::to_string(t.pos));
    }
  }

  /// `name` already consumed; continues `.attr.attr`. A path of length one
  /// starting with an uppercase letter is treated as a class extent.
  Result<ExprPtr> ParsePathFrom(const std::string& first) {
    std::vector<std::string> path{first};
    while (Peek().kind == Tok::kDot) {
      Next();
      if (Peek().kind != Tok::kIdent) {
        return Status::ParseError("expected attribute after '.'");
      }
      path.push_back(Next().text);
    }
    if (path.size() == 1 && !path[0].empty() &&
        std::isupper(static_cast<unsigned char>(path[0][0]))) {
      auto e = Expr::Make(Expr::Kind::kExtent);
      e->name = path[0];
      return e;
    }
    auto e = Expr::Make(Expr::Kind::kAttrPath);
    e->path = std::move(path);
    return e;
  }

  Result<ExprPtr> ParseCall(const std::string& op) {
    auto e = Expr::Make(Expr::Kind::kCall);
    e->name = op;
    MF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    if (Peek().kind != Tok::kRParen) {
      while (true) {
        MF_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
        e->args.push_back(std::move(a));
        if (Peek().kind != Tok::kComma) break;
        Next();
      }
    }
    MF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    return e;
  }

  Result<ExprPtr> ParseAlgebraOp() {
    const std::string kw = Next().text;
    ExprPtr e;
    if (kw == "select") {
      e = Expr::Make(Expr::Kind::kSelect);
    } else if (kw == "project") {
      e = Expr::Make(Expr::Kind::kProject);
    } else if (kw == "nest") {
      e = Expr::Make(Expr::Kind::kNest);
    } else if (kw == "unnest") {
      e = Expr::Make(Expr::Kind::kUnnest);
    } else if (kw == "union") {
      e = Expr::Make(Expr::Kind::kUnion);
    } else if (kw == "difference") {
      e = Expr::Make(Expr::Kind::kDiff);
    } else {
      e = Expr::Make(Expr::Kind::kIntersect);
    }

    if (Peek().kind == Tok::kLBracket) {
      Next();
      if (Peek().kind == Tok::kLAngleTup) {
        // project[<expr : name, ...>]
        Next();
        while (true) {
          MF_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          std::string label;
          if (Peek().kind == Tok::kColon) {
            Next();
            if (Peek().kind != Tok::kIdent) {
              return Status::ParseError("expected name after ':'");
            }
            label = Next().text;
          }
          e->params.push_back(std::move(item));
          e->param_names.push_back(std::move(label));
          if (Peek().kind != Tok::kComma) break;
          Next();
        }
        MF_RETURN_NOT_OK(Expect(Tok::kRAngleTup, "'>'"));
      } else {
        while (Peek().kind != Tok::kRBracket) {
          MF_ASSIGN_OR_RETURN(ExprPtr p, ParseExpr());
          e->params.push_back(std::move(p));
          e->param_names.emplace_back();
          if (Peek().kind == Tok::kComma) {
            Next();
          } else {
            break;
          }
        }
      }
      MF_RETURN_NOT_OK(Expect(Tok::kRBracket, "']'"));
    }

    MF_RETURN_NOT_OK(Expect(Tok::kLParen, "'('"));
    while (Peek().kind != Tok::kRParen) {
      MF_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      e->args.push_back(std::move(a));
      if (Peek().kind == Tok::kComma) {
        Next();
      } else {
        break;
      }
    }
    MF_RETURN_NOT_OK(Expect(Tok::kRParen, "')'"));
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseMoa(const std::string& text) {
  Lexer lexer(text);
  MF_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Lex());
  Parser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace moaflat::moa
