#ifndef MOAFLAT_MOA_PARSER_H_
#define MOAFLAT_MOA_PARSER_H_

#include <string>

#include "common/result.h"
#include "moa/ast.h"

namespace moaflat::moa {

/// Parses the paper's concrete MOA syntax (Section 4.1), e.g.
///
///   project[<date : year, sum(project[revenue](%2)) : loss>](
///     nest[date](
///       project[<year(order.orderdate) : date,
///                *(extendedprice, -(1.0, discount)) : revenue>](
///         select[=(order.clerk, "Clerk#000000088"),
///                =(returnflag, 'R')](Item))))
///
/// Grammar sketch:
///   expr     := keyword '[' params ']' '(' args ')'      (select/project/..)
///             | op '(' exprlist ')'                       (prefix calls)
///             | path | '%' name | '%' int | literal
///   params   := exprlist  |  '<' expr ':' name, ... '>'   (project items)
///   path     := name ('.' name)*
///   literal  := int | float | 'c' | "str" | date"YYYY-MM-DD"
Result<ExprPtr> ParseMoa(const std::string& text);

}  // namespace moaflat::moa

#endif  // MOAFLAT_MOA_PARSER_H_
