#include "moa/rewriter.h"

#include <algorithm>
#include <cctype>

#include "moa/parser.h"

namespace moaflat::moa {
namespace {

using mil::L;
using mil::MilArg;
using mil::V;

bool IsCmpName(const std::string& n) {
  return n == "=" || n == "!=" || n == "<" || n == "<=" || n == ">" ||
         n == ">=";
}

bool IsAggName(const std::string& n) {
  return n == "sum" || n == "count" || n == "avg" || n == "min" ||
         n == "max";
}

/// MIL select operator implementing comparison `cmp` against a literal.
std::string SelectOpFor(const std::string& cmp) {
  if (cmp == "=") return "select";
  return "select." + cmp;
}

std::string UpperName(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

std::string Translation::ToString() const {
  return program.ToString() + "# structure: " + result->ToString() + "\n";
}

Result<Translation> Rewriter::TranslateText(const std::string& moa_text) {
  MF_ASSIGN_OR_RETURN(ExprPtr ast, ParseMoa(moa_text));
  return Translate(*ast);
}

Result<Translation> Rewriter::Translate(const Expr& query) {
  b_ = mil::MilBuilder();
  used_names_.clear();

  // Top-level scalar aggregate, e.g. Q6-style
  // sum(project[*(extendedprice, discount)](select[...](Item))):
  // translate the collection, then one whole-column aggregate.
  if (query.kind == Expr::Kind::kCall && IsAggName(query.name) &&
      query.args.size() == 1) {
    MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(*query.args[0], nullptr));
    if (rel.value->kind != StructExpr::Kind::kAtom) {
      return Status::NotImplemented(
          "top-level aggregates need an atomic element value; use "
          "project[expr](...) to pick one");
    }
    const std::string agg =
        Emit(UpperName(query.name), query.name, {V(rel.value->var)});
    Translation t;
    t.result = StructExpr::Atom(agg);
    t.program = b_.Finish({agg});
    return t;
  }

  MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(query, nullptr));

  StructPtr result =
      StructExpr::Set(rel.index.empty() ? rel.ids : rel.index, rel.value);
  Translation t;
  std::vector<std::string> result_vars;
  CollectResultVars(result, &result_vars);
  t.program = b_.Finish(std::move(result_vars));
  t.result = std::move(result);
  return t;
}

std::string Rewriter::Emit(const std::string& preferred, std::string op,
                           std::vector<MilArg> args) {
  std::string name = preferred;
  int suffix = 1;
  while (used_names_.count(name) > 0) {
    name = preferred + std::to_string(++suffix);
  }
  used_names_.insert(name);
  b_.Let(name, std::move(op), std::move(args));
  return name;
}

void Rewriter::CollectResultVars(const StructPtr& s,
                                 std::vector<std::string>* out) {
  switch (s->kind) {
    case StructExpr::Kind::kAtom:
      out->push_back(s->var);
      break;
    case StructExpr::Kind::kObjectRef:
      break;
    case StructExpr::Kind::kTuple:
      for (const auto& [name, field] : s->fields) {
        CollectResultVars(field, out);
      }
      break;
    case StructExpr::Kind::kSet:
      out->push_back(s->var);
      CollectResultVars(s->elem, out);
      break;
  }
}

Result<Rewriter::Rel> Rewriter::TransCollection(const Expr& e,
                                                const Rel* outer) {
  switch (e.kind) {
    case Expr::Kind::kExtent: {
      MF_ASSIGN_OR_RETURN(const ClassDef* cls,
                          db_->schema().GetClass(e.name));
      if (!db_->env().Has(e.name)) {
        return Status::KeyError("extent BAT '" + e.name + "' not loaded");
      }
      Rel rel;
      rel.ids = e.name;
      rel.value = StructExpr::ObjectRef(e.name);
      rel.cls = cls;
      rel.full = true;
      return rel;
    }

    case Expr::Kind::kAttrPath: {
      if (outer == nullptr) {
        return Status::Invalid("attribute path '" + e.ToString() +
                               "' outside of an element context");
      }
      return TransSetAttr(e.path, *outer);
    }

    case Expr::Kind::kSelect: {
      if (e.args.size() != 1) {
        return Status::Invalid("select expects one input collection");
      }
      MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(*e.args[0], outer));
      for (const ExprPtr& pred : e.params) {
        MF_RETURN_NOT_OK(ApplySelect(&rel, *pred));
      }
      return rel;
    }

    case Expr::Kind::kProject: {
      if (e.args.size() != 1) {
        return Status::Invalid("project expects one input collection");
      }
      MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(*e.args[0], outer));
      if (e.params.size() == 1 && e.param_names[0].empty()) {
        // project[expr](X): element value becomes the single expression.
        MF_ASSIGN_OR_RETURN(StructPtr field, FieldOf(rel, *e.params[0]));
        rel.value = field;
        rel.cls = nullptr;
        return rel;
      }
      std::vector<std::pair<std::string, StructPtr>> fields;
      for (size_t i = 0; i < e.params.size(); ++i) {
        std::string name = e.param_names[i];
        if (name.empty()) name = "f" + std::to_string(i + 1);
        MF_ASSIGN_OR_RETURN(StructPtr field, FieldOf(rel, *e.params[i]));
        fields.emplace_back(name, std::move(field));
      }
      rel.value = StructExpr::Tuple(std::move(fields));
      rel.cls = nullptr;
      return rel;
    }

    case Expr::Kind::kNest: {
      if (e.args.size() != 1) {
        return Status::Invalid("nest expects one input collection");
      }
      MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(*e.args[0], outer));
      if (e.params.empty()) {
        return Status::Invalid("nest needs at least one grouping attribute");
      }
      // Grouping phase (Fig. 10 lines 6-9): group on the first attribute,
      // refine with the rest.
      std::vector<std::string> attr_vals;
      for (const ExprPtr& p : e.params) {
        MF_ASSIGN_OR_RETURN(std::string v, ValueOf(rel, *p));
        attr_vals.push_back(v);
      }
      std::string grp = Emit("class", "group", {V(attr_vals[0])});
      for (size_t k = 1; k < attr_vals.size(); ++k) {
        grp = Emit("class", "group", {V(grp), V(attr_vals[k])});
      }
      // INDEX := mirror(grp) is the SET index [group, element].
      const std::string index = Emit("INDEX", "mirror", {V(grp)});
      const std::string gids = Emit("groups", "hunique", {V(index)});

      // One representative value per group for each grouping attribute
      // (paper: `YEAR := join(class.mirror, years).unique`).
      std::vector<std::pair<std::string, StructPtr>> fields;
      for (size_t k = 0; k < e.params.size(); ++k) {
        std::string label = "g" + std::to_string(k + 1);
        if (e.params[k]->kind == Expr::Kind::kAttrPath) {
          label = e.params[k]->path.back();
        }
        const std::string joined =
            Emit(UpperName(label) + "_all", "join",
                 {V(index), V(attr_vals[k])});
        const std::string per_group =
            Emit(UpperName(label), "unique", {V(joined)});
        fields.emplace_back(label, StructExpr::Atom(per_group));
      }
      fields.emplace_back("group", StructExpr::Set(index, rel.value));

      Rel out;
      out.ids = gids;
      out.value = StructExpr::Tuple(std::move(fields));
      out.full = false;
      return out;
    }

    case Expr::Kind::kUnion:
    case Expr::Kind::kDiff:
    case Expr::Kind::kIntersect: {
      if (e.args.size() != 2) {
        return Status::Invalid("set operation expects two inputs");
      }
      MF_ASSIGN_OR_RETURN(Rel l, TransCollection(*e.args[0], outer));
      MF_ASSIGN_OR_RETURN(Rel r, TransCollection(*e.args[1], outer));
      if (l.cls == nullptr || l.cls != r.cls) {
        return Status::NotImplemented(
            "set operations are supported on object collections of one "
            "class");
      }
      const char* op = e.kind == Expr::Kind::kUnion     ? "kunion"
                       : e.kind == Expr::Kind::kDiff    ? "kdiff"
                                                        : "kintersect";
      Rel out = l;
      out.ids = Emit("setop", op, {V(l.ids), V(r.ids)});
      out.full = false;
      return out;
    }

    case Expr::Kind::kUnnest: {
      // unnest[attr](X): flattens one set-valued field — each (owner,
      // member) pair of the SET index becomes an element of the result.
      // In the flattened representation this is almost free: the index
      // BAT *is* the pair list; mark() keys the pairs with fresh oids.
      if (e.args.size() != 1 || e.params.size() != 1 ||
          e.params[0]->kind != Expr::Kind::kAttrPath) {
        return Status::Invalid("unnest expects unnest[attr](collection)");
      }
      MF_ASSIGN_OR_RETURN(Rel rel, TransCollection(*e.args[0], outer));
      MF_ASSIGN_OR_RETURN(StructPtr set_field,
                          FieldOf(rel, *e.params[0]));
      if (set_field->kind != StructExpr::Kind::kSet) {
        return Status::TypeError("unnest attribute is not set-valued");
      }
      const std::string& index = set_field->var;  // [owner, member]
      // Fresh pair oids, positionally shared by both sides of the index.
      const std::string owner_pairs =
          Emit("pairs_by_owner", "mark", {V(index), L(Value::MakeOid(0))});
      const std::string by_owner =
          Emit("pair_owner", "mirror", {V(owner_pairs)});  // [pair, owner]
      const std::string index_m = Emit("index_m", "mirror", {V(index)});
      const std::string member_pairs = Emit(
          "pairs_by_member", "mark", {V(index_m), L(Value::MakeOid(0))});
      const std::string by_member =
          Emit("pair_member", "mirror", {V(member_pairs)});

      std::vector<std::pair<std::string, StructPtr>> fields;
      // Owner-keyed scalar fields move to pair keys via [pair, owner].
      if (rel.value->kind == StructExpr::Kind::kTuple) {
        for (const auto& [name, f] : rel.value->fields) {
          if (f->kind == StructExpr::Kind::kAtom) {
            fields.emplace_back(
                name, StructExpr::Atom(Emit(name + "_flat", "join",
                                            {V(by_owner), V(f->var)})));
          }
        }
      } else if (rel.value->kind == StructExpr::Kind::kObjectRef) {
        // [pair, owner-oid] is itself the owner reference per element.
        fields.emplace_back("owner", StructExpr::Atom(by_owner));
      }
      // Member-side values.
      if (set_field->elem->kind == StructExpr::Kind::kTuple) {
        for (const auto& [name, f] : set_field->elem->fields) {
          if (f->kind == StructExpr::Kind::kAtom) {
            fields.emplace_back(
                name, StructExpr::Atom(Emit(name + "_flat", "join",
                                            {V(by_member), V(f->var)})));
          }
        }
      } else {
        fields.emplace_back(e.params[0]->path.back(),
                            StructExpr::Atom(by_member));
      }

      Rel out;
      out.ids = by_owner;  // head-unique pair oids
      out.value = StructExpr::Tuple(std::move(fields));
      out.full = false;
      return out;
    }

    default:
      return Status::Invalid("expression '" + e.ToString() +
                             "' is not a collection");
  }
}

Result<Rewriter::Rel> Rewriter::TransSetAttr(
    const std::vector<std::string>& path, const Rel& outer) {
  if (path.size() != 1) {
    return Status::NotImplemented(
        "set-valued attribute paths must be a single component");
  }
  if (outer.cls == nullptr) {
    return Status::Invalid("set attribute on a non-object element");
  }
  const AttrDef* attr = outer.cls->FindAttr(path[0]);
  if (attr == nullptr) {
    return Status::KeyError("class " + outer.cls->name + " has no attribute " +
                            path[0]);
  }
  if (attr->kind != AttrDef::Kind::kSetRef &&
      attr->kind != AttrDef::Kind::kSetTuple) {
    return Status::TypeError("attribute " + path[0] + " is not set-valued");
  }

  const std::string attr_bat =
      Database::AttrBatName(outer.cls->name, attr->name);
  Rel rel;
  if (outer.full) {
    rel.index = attr_bat;
    rel.full = true;  // the element ids are still unrestricted
  } else {
    rel.index = Emit(path[0] + "_idx", "semijoin",
                     {V(attr_bat), V(outer.ids)});
    rel.full = false;
  }
  rel.ids = Emit(path[0] + "_elems", "mirror", {V(rel.index)});

  if (attr->kind == AttrDef::Kind::kSetRef) {
    MF_ASSIGN_OR_RETURN(const ClassDef* elem_cls,
                        db_->schema().GetClass(attr->ref_class));
    // The elements are object oids of the target class (SET(A) storage
    // optimization of Section 3.3): `ids` (= mirror(index)) already
    // exposes them as heads, and navigation uses the target class's
    // attribute BATs directly.
    rel.value = StructExpr::ObjectRef(attr->ref_class);
    rel.cls = elem_cls;
  } else {
    std::vector<std::pair<std::string, StructPtr>> fields;
    for (const AttrDef& f : attr->tuple_fields) {
      fields.emplace_back(
          f.name, StructExpr::Atom(Database::FieldBatName(
                      outer.cls->name, attr->name, f.name)));
    }
    rel.value = StructExpr::Tuple(std::move(fields));
  }
  return rel;
}

Status Rewriter::ApplySelect(Rel* rel, const Expr& pred) {
  if (pred.kind != Expr::Kind::kCall) {
    return Status::Invalid("selection predicate must be an operator call");
  }

  // Nested collections (§4.3.2): compute T(f(X)) on the flat element
  // representation, then reduce the SET index by one semijoin.
  auto reduce_index = [&](const std::string& qualifying) -> Status {
    if (!rel->index.empty()) {
      const std::string elem_first =
          Emit("byelem", "mirror", {V(rel->index)});
      const std::string reduced =
          Emit("reduced", "semijoin", {V(elem_first), V(qualifying)});
      rel->index = Emit("index", "mirror", {V(reduced)});
      rel->ids = Emit("elems", "mirror", {V(rel->index)});
    } else {
      rel->ids = qualifying;
    }
    rel->full = false;
    return Status::OK();
  };

  const bool is_cmp = IsCmpName(pred.name);
  const bool is_like = pred.name == "like";

  if ((is_cmp || is_like) && pred.args.size() == 2 &&
      pred.args[0]->kind == Expr::Kind::kAttrPath &&
      pred.args[1]->kind == Expr::Kind::kLiteral) {
    const std::vector<std::string>& path = pred.args[0]->path;
    const Value& lit = pred.args[1]->lit;
    const std::string sel_op = is_like ? "select.like" : SelectOpFor(pred.name);

    // Pushdown on a full extent: select directly on the (tail-sorted)
    // target attribute BAT, then walk reference hops backwards with joins
    // (exactly the Fig. 10 lines 1-2 shape for order.clerk).
    if (rel->full && rel->cls != nullptr) {
      const ClassDef* cls = rel->cls;
      std::vector<std::string> hop_bats;  // ref BATs along the path
      for (size_t k = 0; k + 1 < path.size(); ++k) {
        const AttrDef* a = cls->FindAttr(path[k]);
        if (a == nullptr || a->kind != AttrDef::Kind::kRef) {
          hop_bats.clear();
          break;
        }
        hop_bats.push_back(Database::AttrBatName(cls->name, path[k]));
        MF_ASSIGN_OR_RETURN(cls, db_->schema().GetClass(a->ref_class));
      }
      const AttrDef* last =
          hop_bats.size() + 1 == path.size() ? cls->FindAttr(path.back())
                                             : nullptr;
      if (last != nullptr && last->kind == AttrDef::Kind::kBase) {
        std::string cur =
            Emit(path.back() + "_sel", sel_op,
                 {V(Database::AttrBatName(cls->name, path.back())), L(lit)});
        for (auto it = hop_bats.rbegin(); it != hop_bats.rend(); ++it) {
          cur = Emit("via_" + *it, "join", {V(*it), V(cur)});
        }
        rel->ids = cur;
        rel->full = false;
        return Status::OK();
      }
    }

    // General case: materialize the attribute over the current elements,
    // then select.
    MF_ASSIGN_OR_RETURN(std::string v, ValueOf(*rel, *pred.args[0]));
    const std::string sel = Emit("sel", sel_op, {V(v), L(lit)});
    return reduce_index(sel);
  }

  // Fully general predicate: vectorize with multiplex into a [id, bit]
  // BAT and select the true rows.
  std::vector<MilArg> margs;
  for (const ExprPtr& a : pred.args) {
    if (a->kind == Expr::Kind::kLiteral) {
      margs.push_back(L(a->lit));
    } else {
      MF_ASSIGN_OR_RETURN(std::string v, ValueOf(*rel, *a));
      margs.push_back(V(v));
    }
  }
  const std::string bits = Emit("pred", "[" + pred.name + "]", margs);
  const std::string sel =
      Emit("sel", "select", {V(bits), L(Value::Bit(true))});
  return reduce_index(sel);
}

Result<std::string> Rewriter::ResolvePath(
    const Rel& rel, const std::vector<std::string>& path) {
  // Tuple elements: the leading component names a field.
  if (rel.value->kind == StructExpr::Kind::kTuple) {
    for (const auto& [name, field] : rel.value->fields) {
      if (name == path[0]) {
        if (field->kind != StructExpr::Kind::kAtom || path.size() != 1) {
          return Status::NotImplemented(
              "navigation beyond tuple field '" + path[0] +
              "' is not supported");
        }
        if (rel.full) return field->var;
        // Align the (possibly global) field BAT with the current ids.
        return Emit(path[0] + "_of", "semijoin", {V(field->var), V(rel.ids)});
      }
    }
    return Status::KeyError("tuple has no field '" + path[0] + "'");
  }

  if (rel.cls == nullptr) {
    return Status::Invalid("cannot resolve path over a non-object element");
  }

  const ClassDef* cls = rel.cls;
  std::string cur;  // [elem_id, current value]
  for (size_t k = 0; k < path.size(); ++k) {
    const AttrDef* a = cls->FindAttr(path[k]);
    if (a == nullptr) {
      return Status::KeyError("class " + cls->name + " has no attribute '" +
                              path[k] + "'");
    }
    const std::string attr_bat = Database::AttrBatName(cls->name, path[k]);
    if (k == 0) {
      if (rel.full) {
        cur = attr_bat;
      } else {
        cur = Emit(path[k] + "s", "semijoin", {V(attr_bat), V(rel.ids)});
      }
    } else {
      cur = Emit(path[k] + "s", "join", {V(cur), V(attr_bat)});
    }
    if (a->kind == AttrDef::Kind::kRef) {
      MF_ASSIGN_OR_RETURN(cls, db_->schema().GetClass(a->ref_class));
    } else if (k + 1 != path.size()) {
      return Status::TypeError("attribute '" + path[k] +
                               "' is not an object reference");
    }
  }
  return cur;
}

Result<std::string> Rewriter::ValueOf(const Rel& rel, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kAttrPath:
      return ResolvePath(rel, e.path);

    case Expr::Kind::kLiteral: {
      // A constant per element: [ids, lit].
      return Emit("const", "project", {V(rel.ids), L(e.lit)});
    }

    case Expr::Kind::kTupleIdx: {
      if (rel.value->kind != StructExpr::Kind::kTuple) {
        return Status::TypeError("%N access on a non-tuple element");
      }
      const size_t i = static_cast<size_t>(e.index);
      if (i < 1 || i > rel.value->fields.size()) {
        return Status::OutOfRange("%N index out of range");
      }
      const StructPtr& field = rel.value->fields[i - 1].second;
      if (field->kind != StructExpr::Kind::kAtom) {
        return Status::TypeError("%N names a non-atomic field");
      }
      return field->var;
    }

    case Expr::Kind::kCall: {
      if (IsAggName(e.name)) return AggregateOverSet(rel, e);
      // Vectorized scalar computation (multiplex).
      std::vector<MilArg> margs;
      for (const ExprPtr& a : e.args) {
        if (a->kind == Expr::Kind::kLiteral) {
          margs.push_back(L(a->lit));
        } else {
          MF_ASSIGN_OR_RETURN(std::string v, ValueOf(rel, *a));
          margs.push_back(V(v));
        }
      }
      return Emit("mx", "[" + e.name + "]", margs);
    }

    default:
      return Status::NotImplemented("cannot evaluate '" + e.ToString() +
                                    "' per element");
  }
}

Result<StructPtr> Rewriter::FieldOf(const Rel& rel, const Expr& e) {
  // Nested collections as fields: set-valued attribute (possibly with a
  // selection applied, §4.3.2).
  if (e.kind == Expr::Kind::kAttrPath && rel.cls != nullptr) {
    const AttrDef* a = rel.cls->FindAttr(e.path[0]);
    if (a != nullptr && (a->kind == AttrDef::Kind::kSetRef ||
                         a->kind == AttrDef::Kind::kSetTuple)) {
      MF_ASSIGN_OR_RETURN(Rel nested, TransSetAttr(e.path, rel));
      return StructExpr::Set(nested.index, nested.value);
    }
  }
  if (e.kind == Expr::Kind::kSelect || e.kind == Expr::Kind::kNest) {
    MF_ASSIGN_OR_RETURN(Rel nested, TransCollection(e, &rel));
    if (nested.index.empty()) {
      return Status::NotImplemented(
          "nested collection field without a SET index");
    }
    return StructExpr::Set(nested.index, nested.value);
  }
  if (e.kind == Expr::Kind::kTupleIdx &&
      rel.value->kind == StructExpr::Kind::kTuple) {
    const size_t i = static_cast<size_t>(e.index);
    if (i >= 1 && i <= rel.value->fields.size()) {
      const StructPtr& f = rel.value->fields[i - 1].second;
      if (f->kind == StructExpr::Kind::kSet) return f;
    }
  }
  // A named tuple field that is itself a set (e.g. the result of a
  // nested-set selection bound by an enclosing project).
  if (e.kind == Expr::Kind::kAttrPath && e.path.size() == 1 &&
      rel.value->kind == StructExpr::Kind::kTuple) {
    for (const auto& [name, f] : rel.value->fields) {
      if (name == e.path[0] && f->kind == StructExpr::Kind::kSet) return f;
    }
  }
  MF_ASSIGN_OR_RETURN(std::string v, ValueOf(rel, e));
  return StructExpr::Atom(v);
}

Result<std::string> Rewriter::AggregateOverSet(const Rel& rel,
                                               const Expr& call) {
  if (call.args.size() != 1) {
    return Status::Invalid(call.name + " expects one argument");
  }
  const Expr& arg = *call.args[0];

  // Resolve the argument to (index [id, elem], element value BAT).
  std::string index;
  std::string elem_val;

  if (arg.kind == Expr::Kind::kProject && arg.args.size() == 1 &&
      arg.params.size() == 1) {
    // sum(project[revenue](%2)) — project a field out of a nested set.
    MF_ASSIGN_OR_RETURN(StructPtr set_field, FieldOf(rel, *arg.args[0]));
    if (set_field->kind != StructExpr::Kind::kSet) {
      return Status::TypeError("aggregate argument is not a set");
    }
    index = set_field->var;
    const Expr& picked = *arg.params[0];
    if (picked.kind != Expr::Kind::kAttrPath || picked.path.size() != 1) {
      return Status::NotImplemented(
          "aggregate projections must name one element attribute");
    }
    if (set_field->elem->kind == StructExpr::Kind::kTuple) {
      bool found = false;
      for (const auto& [name, f] : set_field->elem->fields) {
        if (name == picked.path[0] &&
            f->kind == StructExpr::Kind::kAtom) {
          elem_val = f->var;
          found = true;
        }
      }
      if (!found) {
        return Status::KeyError("set element has no field '" +
                                picked.path[0] + "'");
      }
    } else {
      return Status::NotImplemented("aggregate over non-tuple set elements");
    }
  } else {
    // sum(%2) / count(supplies) — aggregate a set field directly.
    MF_ASSIGN_OR_RETURN(StructPtr set_field, FieldOf(rel, arg));
    if (set_field->kind != StructExpr::Kind::kSet) {
      return Status::TypeError("aggregate argument is not a set");
    }
    index = set_field->var;
    if (set_field->elem->kind == StructExpr::Kind::kAtom) {
      elem_val = set_field->elem->var;
    } else if (call.name == "count") {
      // count needs no element values: aggregate the index itself.
      return Emit(UpperName(call.name), "{count}", {V(index)});
    } else {
      return Status::NotImplemented(
          "aggregate needs atomic set elements; project a field first");
    }
  }

  // join the SET index with the element values, then one bulk
  // set-aggregate — "nested aggregates in one go" (Section 4.2).
  const std::string joined =
      Emit("pergroup", "join", {V(index), V(elem_val)});
  return Emit(UpperName(call.name), "{" + call.name + "}", {V(joined)});
}

}  // namespace moaflat::moa
