#ifndef MOAFLAT_MOA_REWRITER_H_
#define MOAFLAT_MOA_REWRITER_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "mil/program.h"
#include "moa/ast.h"
#include "moa/database.h"
#include "moa/struct_expr.h"

namespace moaflat::moa {

/// The output of flattening one MOA query (Section 4.3): a MIL program over
/// the operand BATs plus the structure function S_Y over the result BATs,
/// such that S_Y(mil(X1..Xn)) = moa(X).
struct Translation {
  mil::MilProgram program;
  StructPtr result;  // always a SET(ids/index, element-structure)

  std::string ToString() const;
};

/// The MOA-to-MIL term rewriter — the paper's core contribution. It walks
/// the algebra expression bottom-up, maintaining for every sub-collection
/// its flattened representation (an id BAT plus a structure expression),
/// and emits MIL per the Section 4.3 transformation rules:
///
///  * select[f](SET(A,X)) -> SET(semijoin(A, T(f(X))), X)   (§4.3.1);
///    equality/range predicates on attribute paths are pushed down to
///    (binary-search) selections on the tail-sorted attribute BATs, with
///    reference paths re-traversed by joins — reproducing the Fig. 10 plan;
///  * selections on set-valued attributes run as ONE flat selection on the
///    decomposed representation (§4.3.2), never per-set iteration;
///  * project evaluates each item to a synced [id,value] BAT (multiplex
///    for arithmetic, {agg} set-aggregates for nested aggregates);
///  * nest[a..] maps to group / refine + the SET index construction used
///    by Q13 (Fig. 5 / Fig. 10 lines 7-9);
///  * union/difference/intersection map to kunion/kdiff/kintersect.
class Rewriter {
 public:
  explicit Rewriter(const Database* db) : db_(db) {}

  /// Translates a parsed MOA expression.
  Result<Translation> Translate(const Expr& query);

  /// Parses and translates MOA text.
  Result<Translation> TranslateText(const std::string& moa_text);

 private:
  /// A translated collection: `ids` names a BAT whose head holds the
  /// current element ids; `index` (nested collections only) names the
  /// [owner, elem] SET-index BAT; `value` reconstructs element values.
  struct Rel {
    std::string ids;
    std::string index;  // empty for top-level collections
    StructPtr value;
    const ClassDef* cls = nullptr;  // set when value is ObjectRef
    bool full = false;              // ids == the untouched class extent
  };

  Result<Rel> TransCollection(const Expr& e, const Rel* outer);
  Result<Rel> TransSetAttr(const std::vector<std::string>& path,
                           const Rel& outer);
  Status ApplySelect(Rel* rel, const Expr& pred);
  Result<std::string> ValueOf(const Rel& rel, const Expr& e);
  Result<std::string> ResolvePath(const Rel& rel,
                                  const std::vector<std::string>& path);
  Result<StructPtr> FieldOf(const Rel& rel, const Expr& e);
  Result<std::string> AggregateOverSet(const Rel& rel, const Expr& call);

  /// Emits `name := op(args)` ensuring a unique variable name; returns the
  /// actual name used.
  std::string Emit(const std::string& preferred, std::string op,
                   std::vector<mil::MilArg> args);

  void CollectResultVars(const StructPtr& s, std::vector<std::string>* out);

  const Database* db_;
  mil::MilBuilder b_;
  std::set<std::string> used_names_;
};

}  // namespace moaflat::moa

#endif  // MOAFLAT_MOA_REWRITER_H_
