#include "moa/result_view.h"

#include <sstream>

namespace moaflat::moa {

Result<int64_t> ResultView::FindById(const std::string& var, Oid id) const {
  auto it = pos_cache_.find(var);
  if (it == pos_cache_.end()) {
    MF_ASSIGN_OR_RETURN(bat::Bat b, env_->GetBat(var));
    std::unordered_map<Oid, size_t> index;
    index.reserve(b.size() * 2);
    for (size_t i = 0; i < b.size(); ++i) {
      index.try_emplace(b.head().OidAt(i), i);
    }
    it = pos_cache_.emplace(var, std::move(index)).first;
  }
  auto hit = it->second.find(id);
  return hit == it->second.end() ? -1 : static_cast<int64_t>(hit->second);
}

Result<std::vector<Oid>> ResultView::SetIds(const StructExpr& set) const {
  if (set.kind != StructExpr::Kind::kSet) {
    return Status::TypeError("structure is not a SET");
  }
  MF_ASSIGN_OR_RETURN(bat::Bat ids, env_->GetBat(set.var));
  std::vector<Oid> out;
  std::unordered_map<Oid, bool> seen;
  for (size_t i = 0; i < ids.size(); ++i) {
    const Oid id = ids.head().OidAt(i);
    if (seen.emplace(id, true).second) out.push_back(id);
  }
  return out;
}

Result<std::vector<Oid>> ResultView::SetMembersOf(const StructExpr& set,
                                                  Oid owner) const {
  if (set.kind != StructExpr::Kind::kSet) {
    return Status::TypeError("structure is not a SET");
  }
  MF_ASSIGN_OR_RETURN(bat::Bat index, env_->GetBat(set.var));
  std::vector<Oid> out;
  for (size_t i = 0; i < index.size(); ++i) {
    if (index.head().OidAt(i) == owner) {
      out.push_back(index.tail().OidAt(i));
    }
  }
  return out;
}

Result<Value> ResultView::AtomValue(const StructExpr& atom, Oid id) const {
  if (atom.kind != StructExpr::Kind::kAtom) {
    return Status::TypeError("structure is not an Atom");
  }
  MF_ASSIGN_OR_RETURN(int64_t pos, FindById(atom.var, id));
  if (pos < 0) return Value();
  MF_ASSIGN_OR_RETURN(bat::Bat b, env_->GetBat(atom.var));
  return b.tail().GetValue(static_cast<size_t>(pos));
}

Result<const StructExpr*> ResultView::Field(const StructExpr& tuple,
                                            const std::string& name) const {
  if (tuple.kind != StructExpr::Kind::kTuple) {
    return Status::TypeError("structure is not a TUPLE");
  }
  for (const auto& [fname, f] : tuple.fields) {
    if (fname == name) return f.get();
  }
  return Status::KeyError("tuple has no field '" + name + "'");
}

Result<std::string> ResultView::Render(const StructExpr& set,
                                       size_t max_elems) const {
  MF_ASSIGN_OR_RETURN(std::vector<Oid> ids, SetIds(set));
  std::ostringstream os;
  os << "{\n";
  size_t shown = 0;
  for (Oid id : ids) {
    if (shown++ >= max_elems) {
      os << "  ... (" << (ids.size() - max_elems) << " more)\n";
      break;
    }
    MF_ASSIGN_OR_RETURN(std::string elem,
                        RenderElem(*set.elem, id, max_elems));
    os << "  " << elem << "\n";
  }
  os << "}";
  return os.str();
}

Result<std::string> ResultView::RenderElem(const StructExpr& value, Oid id,
                                           size_t max_elems) const {
  std::ostringstream os;
  switch (value.kind) {
    case StructExpr::Kind::kAtom: {
      MF_ASSIGN_OR_RETURN(Value v, AtomValue(value, id));
      os << v.ToString();
      break;
    }
    case StructExpr::Kind::kObjectRef:
      os << value.class_name << "(" << id << ")";
      break;
    case StructExpr::Kind::kTuple: {
      os << "<";
      bool first = true;
      for (const auto& [name, f] : value.fields) {
        if (!first) os << ", ";
        first = false;
        os << name << ": ";
        MF_ASSIGN_OR_RETURN(std::string s, RenderElem(*f, id, max_elems));
        os << s;
      }
      os << ">";
      break;
    }
    case StructExpr::Kind::kSet: {
      MF_ASSIGN_OR_RETURN(std::vector<Oid> members, SetMembersOf(value, id));
      os << "{";
      size_t shown = 0;
      for (Oid m : members) {
        if (shown >= max_elems) {
          os << ", ...";
          break;
        }
        if (shown++ > 0) os << ", ";
        MF_ASSIGN_OR_RETURN(std::string s,
                            RenderElem(*value.elem, m, max_elems));
        os << s;
      }
      os << "}";
      break;
    }
  }
  return os.str();
}

}  // namespace moaflat::moa
