#ifndef MOAFLAT_MOA_DATABASE_H_
#define MOAFLAT_MOA_DATABASE_H_

#include <string>

#include "bat/bat.h"
#include "common/result.h"
#include "mil/interpreter.h"
#include "moa/schema.h"

namespace moaflat::moa {

/// A flattened MOA database: the class catalog plus the vertically
/// decomposed BAT store (Section 3.3, Fig. 3).
///
/// Naming convention (exactly the paper's):
///   `Class`            — extent BAT [oid, void]
///   `Class_attr`       — base/ref attribute BAT [oid, value|oid]
///   `Class_attr`       — for set-valued attrs: index BAT [owner, elem]
///   `Class_attr_field` — tuple-field BATs of set-of-tuple attrs
///                        [elem, value]
class Database {
 public:
  Schema& schema() { return schema_; }
  const Schema& schema() const { return schema_; }

  mil::MilEnv& env() { return env_; }
  const mil::MilEnv& env() const { return env_; }

  /// Registers a BAT under its conventional name.
  void Bind(const std::string& name, bat::Bat b) {
    env_.BindBat(name, std::move(b));
  }

  Result<bat::Bat> Get(const std::string& name) const {
    return env_.GetBat(name);
  }

  /// Conventional name of an attribute BAT.
  static std::string AttrBatName(const std::string& cls,
                                 const std::string& attr) {
    return cls + "_" + attr;
  }

  /// Conventional name of a tuple-field BAT of a set-of-tuple attribute.
  static std::string FieldBatName(const std::string& cls,
                                  const std::string& attr,
                                  const std::string& field) {
    return cls + "_" + attr + "_" + field;
  }

 private:
  Schema schema_;
  mil::MilEnv env_;
};

}  // namespace moaflat::moa

#endif  // MOAFLAT_MOA_DATABASE_H_
