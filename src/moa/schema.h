#ifndef MOAFLAT_MOA_SCHEMA_H_
#define MOAFLAT_MOA_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace moaflat::moa {

/// One attribute of a MOA class (Section 3.1). The MOA structuring
/// primitives SET/TUPLE/OBJECT combine orthogonally; the attribute kinds
/// below cover their occurrences in class definitions:
///   kBase     name : string                       (atomic Monet type)
///   kRef      nation : Nation                     (object reference)
///   kSetRef   orders : {Order}                    (set of references)
///   kSetTuple supplies : {<part:Part, cost:float>} (set of tuples)
struct AttrDef {
  enum class Kind { kBase, kRef, kSetRef, kSetTuple };

  std::string name;
  Kind kind = Kind::kBase;
  MonetType base = MonetType::kInt;      // kBase
  std::string ref_class;                 // kRef / kSetRef
  std::vector<AttrDef> tuple_fields;     // kSetTuple

  static AttrDef Base(std::string name, MonetType t) {
    AttrDef a;
    a.name = std::move(name);
    a.kind = Kind::kBase;
    a.base = t;
    return a;
  }
  static AttrDef Ref(std::string name, std::string cls) {
    AttrDef a;
    a.name = std::move(name);
    a.kind = Kind::kRef;
    a.ref_class = std::move(cls);
    return a;
  }
  static AttrDef SetRef(std::string name, std::string cls) {
    AttrDef a;
    a.name = std::move(name);
    a.kind = Kind::kSetRef;
    a.ref_class = std::move(cls);
    return a;
  }
  static AttrDef SetTuple(std::string name, std::vector<AttrDef> fields) {
    AttrDef a;
    a.name = std::move(name);
    a.kind = Kind::kSetTuple;
    a.tuple_fields = std::move(fields);
    return a;
  }
};

/// A MOA class: a named object type whose extent is a database set.
struct ClassDef {
  std::string name;
  std::vector<AttrDef> attrs;

  const AttrDef* FindAttr(const std::string& attr) const {
    for (const AttrDef& a : attrs) {
      if (a.name == attr) return &a;
    }
    return nullptr;
  }
};

/// The class catalog of a MOA database.
class Schema {
 public:
  void AddClass(ClassDef cls) { classes_[cls.name] = std::move(cls); }

  const ClassDef* FindClass(const std::string& name) const {
    auto it = classes_.find(name);
    return it == classes_.end() ? nullptr : &it->second;
  }

  Result<const ClassDef*> GetClass(const std::string& name) const {
    const ClassDef* c = FindClass(name);
    if (c == nullptr) return Status::KeyError("unknown class '" + name + "'");
    return c;
  }

  const std::map<std::string, ClassDef>& classes() const { return classes_; }

 private:
  std::map<std::string, ClassDef> classes_;
};

}  // namespace moaflat::moa

#endif  // MOAFLAT_MOA_SCHEMA_H_
