#ifndef MOAFLAT_MOA_QUERY_H_
#define MOAFLAT_MOA_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mil/interpreter.h"
#include "moa/database.h"
#include "moa/rewriter.h"

namespace moaflat::moa {

/// End-to-end result of one MOA query: the translation (MIL program +
/// structure expression), the execution environment holding the result
/// BATs, and the per-statement traces.
struct QueryResult {
  Translation translation;
  mil::MilEnv env;
  std::vector<mil::StmtTrace> traces;

  /// Renders the structured result via the structure functions.
  Result<std::string> Render(size_t max_elems = 20) const;
};

/// Parses, flattens and executes MOA text against `db` — the complete
/// pipeline of Fig. 6: MOA -> (rewriter) -> MIL -> (interpreter) -> BATs
/// -> (structure function) -> structured result. The database environment
/// is copied, so base BATs are never mutated. All execution state (tracer,
/// IO accounting, memory budget) flows through `ctx`, so concurrent
/// queries with separate contexts are fully isolated.
Result<QueryResult> RunMoa(const kernel::ExecContext& ctx, const Database& db,
                           const std::string& moa_text);

/// Compatibility overload: snapshots the legacy thread-local scopes.
Result<QueryResult> RunMoa(const Database& db, const std::string& moa_text);

}  // namespace moaflat::moa

#endif  // MOAFLAT_MOA_QUERY_H_
