#include "moa/query.h"

#include "moa/result_view.h"

namespace moaflat::moa {

Result<std::string> QueryResult::Render(size_t max_elems) const {
  ResultView view(&env);
  return view.Render(*translation.result, max_elems);
}

Result<QueryResult> RunMoa(const kernel::ExecContext& ctx, const Database& db,
                           const std::string& moa_text) {
  Rewriter rewriter(&db);
  MF_ASSIGN_OR_RETURN(Translation t, rewriter.TranslateText(moa_text));

  QueryResult qr;
  qr.env = db.env();  // shared columns, cheap copy
  mil::MilInterpreter interp(&qr.env, &ctx);
  MF_RETURN_NOT_OK(interp.Run(t.program));
  qr.translation = std::move(t);
  qr.traces = interp.traces();
  return qr;
}

Result<QueryResult> RunMoa(const Database& db, const std::string& moa_text) {
  return RunMoa(kernel::ExecContext::FromThreadLocals(), db, moa_text);
}

}  // namespace moaflat::moa
