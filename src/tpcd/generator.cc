#include "tpcd/generator.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace moaflat::tpcd {
namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};

struct NationSpec {
  const char* name;
  int region;
};
const NationSpec kNations[] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK", "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kTypeSyl1[] = {"STANDARD", "SMALL", "MEDIUM",
                           "LARGE", "ECONOMY", "PROMO"};
const char* kTypeSyl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                           "BRUSHED"};
const char* kTypeSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContSyl1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContSyl2[] = {"CASE", "BOX", "BAG", "JAR",
                           "PKG", "PACK", "CAN", "DRUM"};
const char* kColors[] = {"almond",  "antique", "aquamarine", "azure",
                         "beige",   "bisque",  "black",      "blanched",
                         "blue",    "blush",   "brown",      "burlywood",
                         "burnished", "chartreuse", "chiffon", "chocolate",
                         "coral",   "cornflower", "cornsilk", "cream",
                         "cyan",    "dark",    "deep",       "dim",
                         "dodger",  "drab",    "firebrick",  "floral",
                         "forest",  "frosted", "gainsboro",  "green"};

std::string Pick(Rng& rng, const char* const* pool, size_t n) {
  return pool[rng.Next() % n];
}

std::string Phone(Rng& rng, int nation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(1000, 9999)));
  return buf;
}

std::string VString(Rng& rng, int min_len, int max_len) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
  const int len = static_cast<int>(rng.Uniform(min_len, max_len));
  std::string s;
  s.reserve(len);
  for (int i = 0; i < len; ++i) s += alphabet[rng.Next() % 63];
  return s;
}

double Money(Rng& rng, double lo, double hi) {
  const double cents = rng.Uniform(static_cast<int64_t>(lo * 100),
                                   static_cast<int64_t>(hi * 100));
  return cents / 100.0;
}

}  // namespace

std::string TpcdData::probe_clerk() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "Clerk#%09d", std::max(num_clerks / 2, 1));
  return buf;
}

TpcdData Generate(double scale_factor, uint64_t seed) {
  Rng rng(seed);
  TpcdData d;

  const size_t num_suppliers =
      std::max<size_t>(10, static_cast<size_t>(10000 * scale_factor));
  const size_t num_parts =
      std::max<size_t>(40, static_cast<size_t>(200000 * scale_factor));
  const size_t num_customers =
      std::max<size_t>(30, static_cast<size_t>(150000 * scale_factor));
  const size_t num_orders = num_customers * 10;
  d.num_clerks =
      std::max(5, static_cast<int>(1000 * scale_factor));

  const Date start = Date::FromYmd(1992, 1, 1);
  const Date end = Date::FromYmd(1998, 8, 2);
  const int order_date_range = end.days() - start.days() - 151;
  const Date cutoff = Date::FromYmd(1995, 6, 17);  // CURRENTDATE

  // Regions and nations are fixed-size per the specification.
  for (const char* r : kRegionNames) {
    d.regions.push_back({r, VString(rng, 20, 60)});
  }
  for (const NationSpec& n : kNations) {
    d.nations.push_back({n.name, n.region});
  }

  for (size_t i = 0; i < num_suppliers; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "Supplier#%09zu", i + 1);
    const int nation = static_cast<int>(rng.Next() % d.nations.size());
    d.suppliers.push_back({name, VString(rng, 10, 30), Phone(rng, nation),
                           Money(rng, -999.99, 9999.99), nation});
  }

  for (size_t i = 0; i < num_parts; ++i) {
    const int mfgr = static_cast<int>(rng.Uniform(1, 5));
    char mfgr_s[24], brand_s[24];
    std::snprintf(mfgr_s, sizeof(mfgr_s), "Manufacturer#%d", mfgr);
    std::snprintf(brand_s, sizeof(brand_s), "Brand#%d%d", mfgr,
                  static_cast<int>(rng.Uniform(1, 5)));
    const std::string type = Pick(rng, kTypeSyl1, 6) + " " +
                             Pick(rng, kTypeSyl2, 5) + " " +
                             Pick(rng, kTypeSyl3, 5);
    const std::string container =
        Pick(rng, kContSyl1, 5) + " " + Pick(rng, kContSyl2, 8);
    const std::string name =
        Pick(rng, kColors, 32) + " " + Pick(rng, kColors, 32);
    // TPC-D retail price formula: 90000 + (key/10)%20001 + 100*(key%1000),
    // all over 100.
    const size_t key = i + 1;
    const double price =
        (90000.0 + (key / 10) % 20001 + 100.0 * (key % 1000)) / 100.0;
    d.parts.push_back(
        {name, mfgr_s, brand_s, type, container,
         static_cast<int>(rng.Uniform(1, 50)), price});
  }

  // Each part is stocked by 4 suppliers (the TPC-D partsupp rule); in the
  // MOA schema the entries form each supplier's `supplies` set, so they
  // are emitted grouped by supplier.
  {
    std::vector<std::vector<TpcdData::PartSupp>> by_supplier(num_suppliers);
    for (size_t p = 0; p < num_parts; ++p) {
      for (int k = 0; k < 4; ++k) {
        const size_t s =
            (p + (k * (num_suppliers / 4 + 1))) % num_suppliers;
        by_supplier[s].push_back(
            {static_cast<int>(p), static_cast<int>(s),
             Money(rng, 1.0, 1000.0),
             static_cast<int>(rng.Uniform(0, 9999))});
      }
    }
    for (auto& group : by_supplier) {
      for (auto& ps : group) d.partsupps.push_back(ps);
    }
  }

  for (size_t i = 0; i < num_customers; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09zu", i + 1);
    const int nation = static_cast<int>(rng.Next() % d.nations.size());
    d.customers.push_back({name, VString(rng, 10, 30), Phone(rng, nation),
                           Pick(rng, kSegments, 5),
                           Money(rng, -999.99, 9999.99), nation});
  }

  d.orders.reserve(num_orders);
  d.items.reserve(num_orders * 4);
  for (size_t o = 0; o < num_orders; ++o) {
    // Only two thirds of the customers place orders (TPC-D sparsity rule).
    size_t cust = rng.Next() % num_customers;
    cust -= cust % 3 == 2 ? 1 : 0;
    const Date odate =
        Date(start.days() +
             static_cast<int32_t>(rng.Uniform(0, order_date_range)));
    char clerk[32];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                  static_cast<int>(rng.Uniform(1, d.num_clerks)));

    const int num_lines = static_cast<int>(rng.Uniform(1, 7));
    double total = 0;
    bool all_open = true;
    bool all_fulfilled = true;
    for (int l = 0; l < num_lines; ++l) {
      TpcdData::Item it;
      it.order = static_cast<int>(o);
      it.part = static_cast<int>(rng.Next() % num_parts);
      // One of the part's four suppliers.
      const int k = static_cast<int>(rng.Uniform(0, 3));
      it.supplier = static_cast<int>(
          (it.part + (k * (num_suppliers / 4 + 1))) % num_suppliers);
      it.quantity = static_cast<int>(rng.Uniform(1, 50));
      it.extendedprice = it.quantity * d.parts[it.part].retailprice;
      it.discount = rng.Uniform(0, 10) / 100.0;
      it.tax = rng.Uniform(0, 8) / 100.0;
      it.shipdate = odate.AddDays(static_cast<int>(rng.Uniform(1, 121)));
      it.commitdate = odate.AddDays(static_cast<int>(rng.Uniform(30, 90)));
      it.receiptdate =
          it.shipdate.AddDays(static_cast<int>(rng.Uniform(1, 30)));
      if (it.receiptdate <= cutoff) {
        it.returnflag = rng.Chance(0.5) ? 'R' : 'A';
      } else {
        it.returnflag = 'N';
      }
      it.linestatus = it.shipdate > cutoff ? 'O' : 'F';
      if (it.linestatus == 'O') {
        all_fulfilled = false;
      } else {
        all_open = false;
      }
      it.shipmode = Pick(rng, kShipModes, 7);
      it.shipinstruct = Pick(rng, kInstructs, 4);
      total += it.extendedprice * (1.0 - it.discount) * (1.0 + it.tax);
      d.items.push_back(std::move(it));
    }

    TpcdData::Order ord;
    ord.cust = static_cast<int>(cust);
    ord.status = all_fulfilled ? 'F' : (all_open ? 'O' : 'P');
    ord.totalprice = total;
    ord.orderdate = odate;
    ord.orderpriority = Pick(rng, kPriorities, 5);
    ord.clerk = clerk;
    ord.shippriority = "0";
    d.orders.push_back(std::move(ord));
  }

  return d;
}

}  // namespace moaflat::tpcd
