#ifndef MOAFLAT_TPCD_COST_MODEL_H_
#define MOAFLAT_TPCD_COST_MODEL_H_

#include "kernel/cost_model.h"

namespace moaflat::tpcd {

/// The Section 5.2.2 select-project cost model now lives in
/// kernel/cost_model.h, where it also drives KernelRegistry dispatch.
/// These aliases keep the Fig. 8 bench and the TPC-D tests spelled the
/// way the paper's section structure suggests.
using CostModelParams = kernel::CostModelParams;
using CostModel = kernel::CostModel;

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_COST_MODEL_H_
