#ifndef MOAFLAT_TPCD_COST_MODEL_H_
#define MOAFLAT_TPCD_COST_MODEL_H_

#include <cstdint>

namespace moaflat::tpcd {

/// The select-project IO cost model of Section 5.2.2: expected number of
/// B-byte disk pages retrieved (cold page faults) for a selection with
/// selectivity s followed by a projection to p attributes of an n-ary
/// table with X rows of uniform value width w.
struct CostModelParams {
  int64_t X = 6000000;  // rows (the paper's 1 GB Item table)
  int n = 16;           // table arity
  int w = 4;            // byte width of one value
  int B = 4096;         // page size
};

class CostModel {
 public:
  explicit CostModel(CostModelParams p) : p_(p) {}

  /// Inverted-list entries per page: C_inv = floor(B / 2w).
  int64_t CInv() const { return p_.B / (2 * p_.w); }
  /// Rows per page of the non-decomposed table: C_rel = floor(B/((n+1)w)).
  int64_t CRel() const { return p_.B / ((p_.n + 1) * p_.w); }
  /// BUNs per page of a BAT: C_bat = floor(B / 2w).
  int64_t CBat() const { return p_.B / (2 * p_.w); }
  /// Datavector values per page: C_dv = floor(B / w).
  int64_t CDv() const { return p_.B / p_.w; }

  /// E_rel(s): index probe cost + unclustered retrieval of qualifying
  /// rows (each page retrieved with probability 1-(1-s)^C_rel).
  double ERel(double s) const;

  /// E_dv(s, p): selection on one tail-sorted BAT plus (p+1) datavector
  /// semijoins (the +1 is the extent lookup of the first semijoin).
  double EDv(double s, int p) const;

  /// Selectivity at which E_rel and E_dv(p) cross (bisection on s in
  /// (0, 1]); returns a negative value if they never cross.
  double Crossover(int p, double s_max = 0.25) const;

  const CostModelParams& params() const { return p_; }

 private:
  CostModelParams p_;
};

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_COST_MODEL_H_
