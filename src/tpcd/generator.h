#ifndef MOAFLAT_TPCD_GENERATOR_H_
#define MOAFLAT_TPCD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace moaflat::tpcd {

/// In-memory TPC-D population, the DBGEN stand-in (Section 6: "we used the
/// DBGEN program to generate the 1GB database"). Cardinality ratios,
/// foreign-key structure, value domains and date rules follow the TPC-D
/// specification; scale factor 1 corresponds to the paper's 1 GB database
/// (6M lineitems). Generation is fully deterministic in the seed.
///
/// Cross-references are 0-based indices into the sibling vectors; the
/// loader turns them into oids.
struct TpcdData {
  struct Region {
    std::string name;
    std::string comment;
  };
  struct Nation {
    std::string name;
    int region;
  };
  struct Supplier {
    std::string name, address, phone;
    double acctbal;
    int nation;
  };
  struct Part {
    std::string name, mfgr, brand, type, container;
    int size;
    double retailprice;
  };
  struct PartSupp {  // one element of some supplier's `supplies` set
    int part, supplier;
    double cost;
    int available;
  };
  struct Customer {
    std::string name, address, phone, mktsegment;
    double acctbal;
    int nation;
  };
  struct Order {
    int cust;
    char status;
    double totalprice;
    Date orderdate;
    std::string orderpriority, clerk, shippriority;
  };
  struct Item {
    int order, part, supplier;
    int quantity;
    double extendedprice, discount, tax;
    char returnflag, linestatus;
    Date shipdate, commitdate, receiptdate;
    std::string shipmode, shipinstruct;
  };

  std::vector<Region> regions;
  std::vector<Nation> nations;
  std::vector<Supplier> suppliers;
  std::vector<Part> parts;
  std::vector<PartSupp> partsupps;  // grouped by supplier index
  std::vector<Customer> customers;
  std::vector<Order> orders;
  std::vector<Item> items;

  int num_clerks = 0;

  /// The clerk whose work Q13 analyzes (guaranteed to exist).
  std::string probe_clerk() const;
};

/// Generates a population at `scale_factor` (1.0 = the paper's 1 GB run;
/// tests use 0.002-0.01).
TpcdData Generate(double scale_factor, uint64_t seed = 19980223);

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_GENERATOR_H_
