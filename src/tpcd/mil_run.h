#ifndef MOAFLAT_TPCD_MIL_RUN_H_
#define MOAFLAT_TPCD_MIL_RUN_H_

#include <string>
#include <vector>

#include "kernel/operators.h"
#include "mil/interpreter.h"
#include "moa/database.h"

namespace moaflat::tpcd {

/// Convenience wrapper for hand-flattened MIL queries: executes statements
/// eagerly against a copy of the database environment, auto-naming
/// temporaries, so query code reads top-to-bottom like the paper's Fig. 10
/// listing.
class MilRun {
 public:
  explicit MilRun(const moa::Database& db,
                  const kernel::ExecContext* ctx = nullptr)
      : env_(db.env()), ctx_(ctx) {}

  /// Executes `op(args...)` into a fresh temp; returns the temp name.
  Result<std::string> Op(const std::string& op,
                         std::vector<mil::MilArg> args) {
    std::string var = "t" + std::to_string(++n_);
    mil::MilStmt stmt{var, op, std::move(args)};
    mil::MilInterpreter one(&env_, ctx_);
    MF_RETURN_NOT_OK(one.Exec(stmt));
    for (const auto& t : one.traces()) traces_.push_back(t);
    return var;
  }

  /// The context statements run under (a thread-local snapshot when the
  /// run was built without one).
  kernel::ExecContext context() const {
    return ctx_ != nullptr ? *ctx_ : kernel::ExecContext::FromThreadLocals();
  }

  Result<bat::Bat> GetBat(const std::string& var) const {
    return env_.GetBat(var);
  }
  Result<Value> GetValue(const std::string& var) const {
    return env_.GetValue(var);
  }

  Result<size_t> CountOf(const std::string& var) const {
    MF_ASSIGN_OR_RETURN(bat::Bat b, env_.GetBat(var));
    return b.size();
  }

  /// Sum of the tail of `var` as a double.
  Result<double> SumTail(const std::string& var) const {
    MF_ASSIGN_OR_RETURN(bat::Bat b, env_.GetBat(var));
    MF_ASSIGN_OR_RETURN(
        Value v, kernel::ScalarAggregate(context(), kernel::AggKind::kSum, b));
    return v.AsDbl();
  }

  mil::MilEnv& env() { return env_; }
  const std::vector<mil::StmtTrace>& traces() const { return traces_; }

 private:
  mil::MilEnv env_;
  const kernel::ExecContext* ctx_;
  std::vector<mil::StmtTrace> traces_;
  int n_ = 0;
};

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_MIL_RUN_H_
