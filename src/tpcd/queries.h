#ifndef MOAFLAT_TPCD_QUERIES_H_
#define MOAFLAT_TPCD_QUERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "kernel/exec_context.h"
#include "mil/interpreter.h"
#include "tpcd/loader.h"

namespace moaflat::tpcd {

/// Outcome of one query on one engine. `check` is an engine-independent
/// checksum (an aggregate over the query result) used to cross-validate
/// the Monet path against the relational baseline.
struct EngineRun {
  size_t rows = 0;
  double check = 0;
  /// Fraction of the Item class qualifying, where the query selects items
  /// (the "Item select%" column of Fig. 9); negative if not applicable.
  double item_selectivity = -1;
  /// "moa" when the query went through the full parse->flatten pipeline,
  /// "mil" when hand-flattened (the paper hand-translated all queries).
  std::string via;
  std::vector<mil::StmtTrace> traces;
};

/// The 15 read-only TPC-D queries of Fig. 9, adapted to the MOA object
/// schema exactly as the paper did. Every query exists twice: on the
/// flattened Monet engine (MOA text where the rewriter covers the query,
/// hand-written MIL otherwise) and on the row-store baseline.
class QuerySuite {
 public:
  static constexpr int kNumQueries = 15;

  explicit QuerySuite(std::shared_ptr<TpcdInstance> inst)
      : inst_(std::move(inst)) {}

  /// Fig. 9's per-query comment.
  static const char* Comment(int q);

  /// MOA text of query `q`, or "" if it is hand-flattened MIL.
  std::string MoaText(int q) const;

  /// Runs query `q` (1-based) on the flattened Monet engine under `ctx`:
  /// all trace records, page faults and memory charges land in the
  /// context, so concurrent runs with separate contexts are isolated.
  Result<EngineRun> RunMonet(int q, const kernel::ExecContext& ctx);

  /// Runs query `q` on the row-store baseline under `ctx` (the context's
  /// IoStats is bound for the duration of the run).
  Result<EngineRun> RunBaseline(int q, const kernel::ExecContext& ctx);

  /// Compatibility overloads: snapshot the legacy thread-local scopes.
  Result<EngineRun> RunMonet(int q) {
    return RunMonet(q, kernel::ExecContext::FromThreadLocals());
  }
  Result<EngineRun> RunBaseline(int q) {
    return RunBaseline(q, kernel::ExecContext::FromThreadLocals());
  }

  const TpcdInstance& instance() const { return *inst_; }

 private:
  std::shared_ptr<TpcdInstance> inst_;
};

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_QUERIES_H_
