#include "tpcd/loader.h"

#include <chrono>
#include <functional>
#include <vector>

#include "bat/datavector.h"
#include "kernel/operators.h"

namespace moaflat::tpcd {
namespace {

using bat::Bat;
using bat::Column;
using bat::ColumnPtr;
using bat::Properties;
using moa::AttrDef;
using moa::ClassDef;
using moa::Database;

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Builds the oid column base, base+1, ... (the class extent head, kept
/// materialized: the cost model charges extent lookups, Section 5.2.2).
ColumnPtr DenseOids(Oid base, size_t n) {
  std::vector<Oid> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = base + i;
  return Column::MakeOid(std::move(v));
}

/// One attribute family: builds the oid-ordered BAT, attaches the shared
/// datavector (extent + oid-ordered value vector), reorders on tail and
/// binds the result under its conventional name.
class ClassLoader {
 public:
  ClassLoader(Database* db, std::string cls, Oid base, size_t n)
      : db_(db),
        cls_(std::move(cls)),
        base_(base),
        n_(n),
        lookup_cache_(std::make_shared<bat::DvLookupCache>()) {
    extent_col_ = DenseOids(base, n);
    Bat extent(extent_col_, Column::MakeVoid(0, n),
               Properties{true, false, true, true});
    db_->Bind(cls_, std::move(extent));
  }

  const ColumnPtr& extent_col() const { return extent_col_; }

  /// Adds one attribute whose oid-ordered values are in `values`.
  Status AddAttr(const std::string& attr, ColumnPtr values,
                 LoadStats* stats) {
    Bat oid_ordered(extent_col_, values, Properties{true, false, true, false});
    stats->base_bytes += values->byte_size();

    // All attributes of the class share one extent and one LOOKUP cache:
    // the first datavector semijoin against a selection "blazes the trail"
    // for every other attribute (Section 5.2.1 / Fig. 10 commentary).
    auto dv =
        std::make_shared<bat::Datavector>(extent_col_, values, lookup_cache_);
    stats->datavector_bytes += values->byte_size();

    MF_ASSIGN_OR_RETURN(
        Bat sorted, kernel::SortTail(kernel::ExecContext(), oid_ordered));
    sorted.SetDatavector(std::move(dv));
    db_->Bind(Database::AttrBatName(cls_, attr), std::move(sorted));
    return Status::OK();
  }

 private:
  Database* db_;
  std::string cls_;
  Oid base_;
  size_t n_;
  std::shared_ptr<bat::DvLookupCache> lookup_cache_;
  ColumnPtr extent_col_;
};

template <typename T, typename Fn>
std::vector<std::string> StrField(const std::vector<T>& rows, Fn&& get) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const T& r : rows) out.push_back(get(r));
  return out;
}

}  // namespace

moa::Schema MakeTpcdSchema() {
  moa::Schema schema;
  using K = MonetType;

  schema.AddClass(ClassDef{
      "Region",
      {AttrDef::Base("name", K::kStr), AttrDef::Base("comment", K::kStr)}});
  schema.AddClass(ClassDef{"Nation",
                           {AttrDef::Base("name", K::kStr),
                            AttrDef::Ref("region", "Region")}});
  schema.AddClass(ClassDef{
      "Part",
      {AttrDef::Base("name", K::kStr),
       AttrDef::Base("manufacturer", K::kStr),
       AttrDef::Base("brand", K::kStr), AttrDef::Base("type", K::kStr),
       AttrDef::Base("size", K::kInt), AttrDef::Base("container", K::kStr),
       AttrDef::Base("retailPrice", K::kDbl)}});
  schema.AddClass(ClassDef{
      "Supplier",
      {AttrDef::Base("name", K::kStr), AttrDef::Base("address", K::kStr),
       AttrDef::Base("phone", K::kStr), AttrDef::Base("acctbal", K::kDbl),
       AttrDef::Ref("nation", "Nation"),
       AttrDef::SetTuple("supplies",
                         {AttrDef::Ref("part", "Part"),
                          AttrDef::Base("cost", K::kDbl),
                          AttrDef::Base("available", K::kInt)})}});
  schema.AddClass(ClassDef{
      "Customer",
      {AttrDef::Base("name", K::kStr), AttrDef::Base("address", K::kStr),
       AttrDef::Base("phone", K::kStr), AttrDef::Base("acctbal", K::kDbl),
       AttrDef::Ref("nation", "Nation"),
       AttrDef::Base("mktsegment", K::kStr),
       AttrDef::SetRef("orders", "Order")}});
  schema.AddClass(ClassDef{
      "Order",
      {AttrDef::Ref("cust", "Customer"), AttrDef::SetRef("item", "Item"),
       AttrDef::Base("status", K::kChr),
       AttrDef::Base("totalprice", K::kDbl),
       AttrDef::Base("orderdate", K::kDate),
       AttrDef::Base("orderpriority", K::kStr),
       AttrDef::Base("clerk", K::kStr),
       AttrDef::Base("shippriority", K::kStr)}});
  schema.AddClass(ClassDef{
      "Item",
      {AttrDef::Ref("part", "Part"), AttrDef::Ref("supplier", "Supplier"),
       AttrDef::Ref("order", "Order"), AttrDef::Base("quantity", K::kInt),
       AttrDef::Base("returnflag", K::kChr),
       AttrDef::Base("linestatus", K::kChr),
       AttrDef::Base("extendedprice", K::kDbl),
       AttrDef::Base("discount", K::kDbl), AttrDef::Base("tax", K::kDbl),
       AttrDef::Base("shipdate", K::kDate),
       AttrDef::Base("commitdate", K::kDate),
       AttrDef::Base("receiptdate", K::kDate),
       AttrDef::Base("shipmode", K::kStr),
       AttrDef::Base("shipinstruct", K::kStr)}});
  return schema;
}

Result<std::shared_ptr<TpcdInstance>> Load(const TpcdData& d,
                                           double scale_factor) {
  auto inst = std::make_shared<TpcdInstance>();
  inst->scale_factor = scale_factor;
  inst->probe_clerk = d.probe_clerk();
  inst->num_items = d.items.size();
  inst->db.schema() = MakeTpcdSchema();
  Database& db = inst->db;
  LoadStats& stats = inst->stats;

  const auto t0 = std::chrono::steady_clock::now();

  // ------------------------------------------------------ row store (DB2)
  rel::RowDatabase& rows = inst->rows;
  using K = MonetType;
  {
    rel::Table* t = rows.AddTable(
        "region", {{"r_key", K::kOidT}, {"r_name", K::kStr},
                   {"r_comment", K::kStr}});
    for (size_t i = 0; i < d.regions.size(); ++i) {
      MF_RETURN_NOT_OK(t->AppendRow({Value::MakeOid(kRegionBase + i),
                                     Value::Str(d.regions[i].name),
                                     Value::Str(d.regions[i].comment)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "nation", {{"n_key", K::kOidT}, {"n_name", K::kStr},
                   {"n_regionkey", K::kOidT}});
    for (size_t i = 0; i < d.nations.size(); ++i) {
      MF_RETURN_NOT_OK(
          t->AppendRow({Value::MakeOid(kNationBase + i),
                        Value::Str(d.nations[i].name),
                        Value::MakeOid(kRegionBase + d.nations[i].region)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "supplier",
        {{"s_key", K::kOidT}, {"s_name", K::kStr}, {"s_address", K::kStr},
         {"s_phone", K::kStr}, {"s_acctbal", K::kDbl},
         {"s_nationkey", K::kOidT}});
    for (size_t i = 0; i < d.suppliers.size(); ++i) {
      const auto& s = d.suppliers[i];
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kSupplierBase + i), Value::Str(s.name),
           Value::Str(s.address), Value::Str(s.phone), Value::Dbl(s.acctbal),
           Value::MakeOid(kNationBase + s.nation)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "part", {{"p_key", K::kOidT}, {"p_name", K::kStr},
                 {"p_mfgr", K::kStr}, {"p_brand", K::kStr},
                 {"p_type", K::kStr}, {"p_size", K::kInt},
                 {"p_container", K::kStr}, {"p_retailprice", K::kDbl}});
    for (size_t i = 0; i < d.parts.size(); ++i) {
      const auto& p = d.parts[i];
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kPartBase + i), Value::Str(p.name),
           Value::Str(p.mfgr), Value::Str(p.brand), Value::Str(p.type),
           Value::Int(p.size), Value::Str(p.container),
           Value::Dbl(p.retailprice)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "partsupp",
        {{"ps_partkey", K::kOidT}, {"ps_suppkey", K::kOidT},
         {"ps_supplycost", K::kDbl}, {"ps_availqty", K::kInt}});
    for (const auto& ps : d.partsupps) {
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kPartBase + ps.part),
           Value::MakeOid(kSupplierBase + ps.supplier),
           Value::Dbl(ps.cost), Value::Int(ps.available)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "customer",
        {{"c_key", K::kOidT}, {"c_name", K::kStr}, {"c_address", K::kStr},
         {"c_phone", K::kStr}, {"c_acctbal", K::kDbl},
         {"c_nationkey", K::kOidT}, {"c_mktsegment", K::kStr}});
    for (size_t i = 0; i < d.customers.size(); ++i) {
      const auto& c = d.customers[i];
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kCustomerBase + i), Value::Str(c.name),
           Value::Str(c.address), Value::Str(c.phone), Value::Dbl(c.acctbal),
           Value::MakeOid(kNationBase + c.nation),
           Value::Str(c.mktsegment)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "orders",
        {{"o_key", K::kOidT}, {"o_custkey", K::kOidT},
         {"o_status", K::kChr}, {"o_totalprice", K::kDbl},
         {"o_orderdate", K::kDate}, {"o_orderpriority", K::kStr},
         {"o_clerk", K::kStr}, {"o_shippriority", K::kStr}});
    for (size_t i = 0; i < d.orders.size(); ++i) {
      const auto& o = d.orders[i];
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kOrderBase + i),
           Value::MakeOid(kCustomerBase + o.cust), Value::Chr(o.status),
           Value::Dbl(o.totalprice), Value::MakeDate(o.orderdate),
           Value::Str(o.orderpriority), Value::Str(o.clerk),
           Value::Str(o.shippriority)}));
    }
    t->Finalize();
  }
  {
    rel::Table* t = rows.AddTable(
        "lineitem",
        {{"l_orderkey", K::kOidT}, {"l_partkey", K::kOidT},
         {"l_suppkey", K::kOidT}, {"l_quantity", K::kInt},
         {"l_extendedprice", K::kDbl}, {"l_discount", K::kDbl},
         {"l_tax", K::kDbl}, {"l_returnflag", K::kChr},
         {"l_linestatus", K::kChr}, {"l_shipdate", K::kDate},
         {"l_commitdate", K::kDate}, {"l_receiptdate", K::kDate},
         {"l_shipmode", K::kStr}, {"l_shipinstruct", K::kStr}});
    for (const auto& it : d.items) {
      MF_RETURN_NOT_OK(t->AppendRow(
          {Value::MakeOid(kOrderBase + it.order),
           Value::MakeOid(kPartBase + it.part),
           Value::MakeOid(kSupplierBase + it.supplier),
           Value::Int(it.quantity), Value::Dbl(it.extendedprice),
           Value::Dbl(it.discount), Value::Dbl(it.tax),
           Value::Chr(it.returnflag), Value::Chr(it.linestatus),
           Value::MakeDate(it.shipdate), Value::MakeDate(it.commitdate),
           Value::MakeDate(it.receiptdate), Value::Str(it.shipmode),
           Value::Str(it.shipinstruct)}));
    }
    t->Finalize();
    stats.base_bytes += rows.total_bytes();
  }

  stats.bulk_load_sec = SecondsSince(t0);
  const auto t1 = std::chrono::steady_clock::now();

  // --------------------------------------- flattened store (Fig. 3 style)
  // Extent creation counts as accelerator time; the per-attribute SortTail
  // calls inside ClassLoader::AddAttr are the "reorder on tail" phase, so
  // we time attribute loading as a whole and attribute it to reorder.
  ClassLoader region(&db, "Region", kRegionBase, d.regions.size());
  ClassLoader nation(&db, "Nation", kNationBase, d.nations.size());
  ClassLoader supplier(&db, "Supplier", kSupplierBase, d.suppliers.size());
  ClassLoader part(&db, "Part", kPartBase, d.parts.size());
  ClassLoader customer(&db, "Customer", kCustomerBase, d.customers.size());
  ClassLoader order(&db, "Order", kOrderBase, d.orders.size());
  ClassLoader item(&db, "Item", kItemBase, d.items.size());
  stats.accel_sec = SecondsSince(t1);

  const auto t2 = std::chrono::steady_clock::now();
  using R = TpcdData::Region;
  using N = TpcdData::Nation;
  using S = TpcdData::Supplier;
  using P = TpcdData::Part;
  using C = TpcdData::Customer;
  using O = TpcdData::Order;
  using I = TpcdData::Item;

  MF_RETURN_NOT_OK(region.AddAttr(
      "name",
      Column::MakeStr(StrField(d.regions, [](const R& r) { return r.name; })),
      &stats));
  MF_RETURN_NOT_OK(region.AddAttr(
      "comment",
      Column::MakeStr(
          StrField(d.regions, [](const R& r) { return r.comment; })),
      &stats));

  MF_RETURN_NOT_OK(nation.AddAttr(
      "name",
      Column::MakeStr(StrField(d.nations, [](const N& n) { return n.name; })),
      &stats));
  {
    std::vector<Oid> refs;
    for (const N& n : d.nations) refs.push_back(kRegionBase + n.region);
    MF_RETURN_NOT_OK(
        nation.AddAttr("region", Column::MakeOid(std::move(refs)), &stats));
  }

  MF_RETURN_NOT_OK(supplier.AddAttr(
      "name",
      Column::MakeStr(
          StrField(d.suppliers, [](const S& s) { return s.name; })),
      &stats));
  MF_RETURN_NOT_OK(supplier.AddAttr(
      "address",
      Column::MakeStr(
          StrField(d.suppliers, [](const S& s) { return s.address; })),
      &stats));
  MF_RETURN_NOT_OK(supplier.AddAttr(
      "phone",
      Column::MakeStr(
          StrField(d.suppliers, [](const S& s) { return s.phone; })),
      &stats));
  {
    std::vector<double> v;
    for (const S& s : d.suppliers) v.push_back(s.acctbal);
    MF_RETURN_NOT_OK(
        supplier.AddAttr("acctbal", Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<Oid> refs;
    for (const S& s : d.suppliers) refs.push_back(kNationBase + s.nation);
    MF_RETURN_NOT_OK(
        supplier.AddAttr("nation", Column::MakeOid(std::move(refs)), &stats));
  }

  MF_RETURN_NOT_OK(part.AddAttr(
      "name",
      Column::MakeStr(StrField(d.parts, [](const P& p) { return p.name; })),
      &stats));
  MF_RETURN_NOT_OK(part.AddAttr(
      "manufacturer",
      Column::MakeStr(StrField(d.parts, [](const P& p) { return p.mfgr; })),
      &stats));
  MF_RETURN_NOT_OK(part.AddAttr(
      "brand",
      Column::MakeStr(StrField(d.parts, [](const P& p) { return p.brand; })),
      &stats));
  MF_RETURN_NOT_OK(part.AddAttr(
      "type",
      Column::MakeStr(StrField(d.parts, [](const P& p) { return p.type; })),
      &stats));
  {
    std::vector<int32_t> v;
    for (const P& p : d.parts) v.push_back(p.size);
    MF_RETURN_NOT_OK(
        part.AddAttr("size", Column::MakeInt(std::move(v)), &stats));
  }
  MF_RETURN_NOT_OK(part.AddAttr(
      "container",
      Column::MakeStr(
          StrField(d.parts, [](const P& p) { return p.container; })),
      &stats));
  {
    std::vector<double> v;
    for (const P& p : d.parts) v.push_back(p.retailprice);
    MF_RETURN_NOT_OK(
        part.AddAttr("retailPrice", Column::MakeDbl(std::move(v)), &stats));
  }

  MF_RETURN_NOT_OK(customer.AddAttr(
      "name",
      Column::MakeStr(
          StrField(d.customers, [](const C& c) { return c.name; })),
      &stats));
  MF_RETURN_NOT_OK(customer.AddAttr(
      "address",
      Column::MakeStr(
          StrField(d.customers, [](const C& c) { return c.address; })),
      &stats));
  MF_RETURN_NOT_OK(customer.AddAttr(
      "phone",
      Column::MakeStr(
          StrField(d.customers, [](const C& c) { return c.phone; })),
      &stats));
  {
    std::vector<double> v;
    for (const C& c : d.customers) v.push_back(c.acctbal);
    MF_RETURN_NOT_OK(
        customer.AddAttr("acctbal", Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<Oid> refs;
    for (const C& c : d.customers) refs.push_back(kNationBase + c.nation);
    MF_RETURN_NOT_OK(
        customer.AddAttr("nation", Column::MakeOid(std::move(refs)), &stats));
  }
  MF_RETURN_NOT_OK(customer.AddAttr(
      "mktsegment",
      Column::MakeStr(
          StrField(d.customers, [](const C& c) { return c.mktsegment; })),
      &stats));

  {
    std::vector<Oid> refs;
    for (const O& o : d.orders) refs.push_back(kCustomerBase + o.cust);
    MF_RETURN_NOT_OK(
        order.AddAttr("cust", Column::MakeOid(std::move(refs)), &stats));
  }
  {
    std::vector<char> v;
    for (const O& o : d.orders) v.push_back(o.status);
    MF_RETURN_NOT_OK(
        order.AddAttr("status", Column::MakeChr(std::move(v)), &stats));
  }
  {
    std::vector<double> v;
    for (const O& o : d.orders) v.push_back(o.totalprice);
    MF_RETURN_NOT_OK(
        order.AddAttr("totalprice", Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<Date> v;
    for (const O& o : d.orders) v.push_back(o.orderdate);
    MF_RETURN_NOT_OK(
        order.AddAttr("orderdate", Column::MakeDate(std::move(v)), &stats));
  }
  MF_RETURN_NOT_OK(order.AddAttr(
      "orderpriority",
      Column::MakeStr(
          StrField(d.orders, [](const O& o) { return o.orderpriority; })),
      &stats));
  MF_RETURN_NOT_OK(order.AddAttr(
      "clerk",
      Column::MakeStr(StrField(d.orders, [](const O& o) { return o.clerk; })),
      &stats));
  MF_RETURN_NOT_OK(order.AddAttr(
      "shippriority",
      Column::MakeStr(
          StrField(d.orders, [](const O& o) { return o.shippriority; })),
      &stats));

  {
    std::vector<Oid> refs;
    for (const I& it : d.items) refs.push_back(kPartBase + it.part);
    MF_RETURN_NOT_OK(
        item.AddAttr("part", Column::MakeOid(std::move(refs)), &stats));
  }
  {
    std::vector<Oid> refs;
    for (const I& it : d.items) refs.push_back(kSupplierBase + it.supplier);
    MF_RETURN_NOT_OK(
        item.AddAttr("supplier", Column::MakeOid(std::move(refs)), &stats));
  }
  {
    std::vector<Oid> refs;
    for (const I& it : d.items) refs.push_back(kOrderBase + it.order);
    MF_RETURN_NOT_OK(
        item.AddAttr("order", Column::MakeOid(std::move(refs)), &stats));
  }
  {
    std::vector<int32_t> v;
    for (const I& it : d.items) v.push_back(it.quantity);
    MF_RETURN_NOT_OK(
        item.AddAttr("quantity", Column::MakeInt(std::move(v)), &stats));
  }
  {
    std::vector<char> v;
    for (const I& it : d.items) v.push_back(it.returnflag);
    MF_RETURN_NOT_OK(
        item.AddAttr("returnflag", Column::MakeChr(std::move(v)), &stats));
  }
  {
    std::vector<char> v;
    for (const I& it : d.items) v.push_back(it.linestatus);
    MF_RETURN_NOT_OK(
        item.AddAttr("linestatus", Column::MakeChr(std::move(v)), &stats));
  }
  {
    std::vector<double> v;
    for (const I& it : d.items) v.push_back(it.extendedprice);
    MF_RETURN_NOT_OK(item.AddAttr("extendedprice",
                                  Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<double> v;
    for (const I& it : d.items) v.push_back(it.discount);
    MF_RETURN_NOT_OK(
        item.AddAttr("discount", Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<double> v;
    for (const I& it : d.items) v.push_back(it.tax);
    MF_RETURN_NOT_OK(
        item.AddAttr("tax", Column::MakeDbl(std::move(v)), &stats));
  }
  {
    std::vector<Date> v;
    for (const I& it : d.items) v.push_back(it.shipdate);
    MF_RETURN_NOT_OK(
        item.AddAttr("shipdate", Column::MakeDate(std::move(v)), &stats));
  }
  {
    std::vector<Date> v;
    for (const I& it : d.items) v.push_back(it.commitdate);
    MF_RETURN_NOT_OK(
        item.AddAttr("commitdate", Column::MakeDate(std::move(v)), &stats));
  }
  {
    std::vector<Date> v;
    for (const I& it : d.items) v.push_back(it.receiptdate);
    MF_RETURN_NOT_OK(
        item.AddAttr("receiptdate", Column::MakeDate(std::move(v)), &stats));
  }
  MF_RETURN_NOT_OK(item.AddAttr(
      "shipmode",
      Column::MakeStr(
          StrField(d.items, [](const I& it) { return it.shipmode; })),
      &stats));
  MF_RETURN_NOT_OK(item.AddAttr(
      "shipinstruct",
      Column::MakeStr(
          StrField(d.items, [](const I& it) { return it.shipinstruct; })),
      &stats));

  // Set-valued attributes: index BATs [owner, element] (Section 3.3).
  {
    // Customer_orders: SET(A) of object references, grouped by customer.
    std::vector<std::pair<Oid, Oid>> pairs;
    for (size_t o = 0; o < d.orders.size(); ++o) {
      pairs.emplace_back(kCustomerBase + d.orders[o].cust, kOrderBase + o);
    }
    std::sort(pairs.begin(), pairs.end());
    std::vector<Oid> owners, elems;
    for (auto& [c, o] : pairs) {
      owners.push_back(c);
      elems.push_back(o);
    }
    db.Bind("Customer_orders",
            Bat(Column::MakeOid(std::move(owners)),
                Column::MakeOid(std::move(elems)),
                Properties{false, true, true, false}));
  }
  {
    // Order_item: items are generated grouped by order.
    std::vector<Oid> owners, elems;
    for (size_t i = 0; i < d.items.size(); ++i) {
      owners.push_back(kOrderBase + d.items[i].order);
      elems.push_back(kItemBase + i);
    }
    db.Bind("Order_item",
            Bat(Column::MakeOid(std::move(owners)),
                Column::MakeOid(std::move(elems)),
                Properties{false, true, true, true}));
  }
  {
    // Supplier_supplies index plus the tuple-field BATs of its elements
    // (Fig. 3). partsupps are generated grouped by supplier.
    std::vector<Oid> owners, elems;
    for (size_t i = 0; i < d.partsupps.size(); ++i) {
      owners.push_back(kSupplierBase + d.partsupps[i].supplier);
      elems.push_back(kSuppliesBase + i);
    }
    db.Bind("Supplier_supplies",
            Bat(Column::MakeOid(std::move(owners)),
                Column::MakeOid(std::move(elems)),
                Properties{false, true, true, true}));

    ClassLoader supplies(&db, "Supplier_supplies_elem", kSuppliesBase,
                         d.partsupps.size());
    std::vector<Oid> part_refs;
    std::vector<double> costs;
    std::vector<int32_t> avail;
    for (const auto& ps : d.partsupps) {
      part_refs.push_back(kPartBase + ps.part);
      costs.push_back(ps.cost);
      avail.push_back(ps.available);
    }
    // Bind the tuple fields under the conventional names.
    MF_RETURN_NOT_OK(supplies.AddAttr(
        "part", Column::MakeOid(std::move(part_refs)), &stats));
    MF_RETURN_NOT_OK(
        supplies.AddAttr("cost", Column::MakeDbl(std::move(costs)), &stats));
    MF_RETURN_NOT_OK(supplies.AddAttr(
        "available", Column::MakeInt(std::move(avail)), &stats));
    MF_ASSIGN_OR_RETURN(Bat p, db.Get("Supplier_supplies_elem_part"));
    MF_ASSIGN_OR_RETURN(Bat c, db.Get("Supplier_supplies_elem_cost"));
    MF_ASSIGN_OR_RETURN(Bat a, db.Get("Supplier_supplies_elem_available"));
    db.Bind("Supplier_supplies_part", p);
    db.Bind("Supplier_supplies_cost", c);
    db.Bind("Supplier_supplies_available", a);
  }

  stats.reorder_sec = SecondsSince(t2);
  return inst;
}

Result<std::shared_ptr<TpcdInstance>> MakeInstance(double scale_factor,
                                                   uint64_t seed) {
  TpcdData data = Generate(scale_factor, seed);
  return Load(data, scale_factor);
}

}  // namespace moaflat::tpcd
