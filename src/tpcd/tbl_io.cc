#include "tpcd/tbl_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace moaflat::tpcd {
namespace {

namespace fs = std::filesystem;

std::string Money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

Result<std::vector<std::string>> SplitLine(const std::string& line,
                                           size_t expected,
                                           const std::string& file) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == '|') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  // DBGEN terminates every row with a trailing '|'; tolerate its absence.
  if (!cur.empty()) fields.push_back(cur);
  if (fields.size() != expected) {
    return Status::ParseError(file + ": expected " +
                              std::to_string(expected) + " fields, got " +
                              std::to_string(fields.size()) + " in '" +
                              line + "'");
  }
  return fields;
}

Result<int> ParseIndex(const std::string& s, size_t limit,
                       const std::string& what) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || v < 1 || static_cast<size_t>(v) > limit) {
    return Status::ParseError("bad " + what + " key '" + s + "'");
  }
  return static_cast<int>(v - 1);  // keys are 1-based in .tbl files
}

Result<Date> ParseDate(const std::string& s) {
  Date d;
  if (!Date::Parse(s, &d)) {
    return Status::ParseError("bad date '" + s + "'");
  }
  return d;
}

Result<std::vector<std::string>> ReadLines(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path.string());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace

Status WriteTbl(const TpcdData& d, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir);

  auto open = [&](const char* name) {
    return std::ofstream(fs::path(dir) / name);
  };

  {
    std::ofstream out = open("region.tbl");
    for (size_t i = 0; i < d.regions.size(); ++i) {
      out << (i + 1) << '|' << d.regions[i].name << '|'
          << d.regions[i].comment << "|\n";
    }
  }
  {
    std::ofstream out = open("nation.tbl");
    for (size_t i = 0; i < d.nations.size(); ++i) {
      out << (i + 1) << '|' << d.nations[i].name << '|'
          << (d.nations[i].region + 1) << "|\n";
    }
  }
  {
    std::ofstream out = open("supplier.tbl");
    for (size_t i = 0; i < d.suppliers.size(); ++i) {
      const auto& s = d.suppliers[i];
      out << (i + 1) << '|' << s.name << '|' << s.address << '|'
          << (s.nation + 1) << '|' << s.phone << '|' << Money(s.acctbal)
          << "|\n";
    }
  }
  {
    std::ofstream out = open("part.tbl");
    for (size_t i = 0; i < d.parts.size(); ++i) {
      const auto& p = d.parts[i];
      out << (i + 1) << '|' << p.name << '|' << p.mfgr << '|' << p.brand
          << '|' << p.type << '|' << p.size << '|' << p.container << '|'
          << Money(p.retailprice) << "|\n";
    }
  }
  {
    std::ofstream out = open("partsupp.tbl");
    for (const auto& ps : d.partsupps) {
      out << (ps.part + 1) << '|' << (ps.supplier + 1) << '|'
          << ps.available << '|' << Money(ps.cost) << "|\n";
    }
  }
  {
    std::ofstream out = open("customer.tbl");
    for (size_t i = 0; i < d.customers.size(); ++i) {
      const auto& c = d.customers[i];
      out << (i + 1) << '|' << c.name << '|' << c.address << '|'
          << (c.nation + 1) << '|' << c.phone << '|' << Money(c.acctbal)
          << '|' << c.mktsegment << "|\n";
    }
  }
  {
    std::ofstream out = open("orders.tbl");
    for (size_t i = 0; i < d.orders.size(); ++i) {
      const auto& o = d.orders[i];
      out << (i + 1) << '|' << (o.cust + 1) << '|' << o.status << '|'
          << Money(o.totalprice) << '|' << o.orderdate.ToString() << '|'
          << o.orderpriority << '|' << o.clerk << '|' << o.shippriority
          << "|\n";
    }
  }
  {
    std::ofstream out = open("lineitem.tbl");
    for (const auto& it : d.items) {
      out << (it.order + 1) << '|' << (it.part + 1) << '|'
          << (it.supplier + 1) << '|' << it.quantity << '|'
          << Money(it.extendedprice) << '|' << it.discount << '|' << it.tax
          << '|' << it.returnflag << '|' << it.linestatus << '|'
          << it.shipdate.ToString() << '|' << it.commitdate.ToString()
          << '|' << it.receiptdate.ToString() << '|' << it.shipmode << '|'
          << it.shipinstruct << "|\n";
    }
  }
  return Status::OK();
}

Result<TpcdData> ReadTbl(const std::string& dir) {
  TpcdData d;
  const fs::path base(dir);

  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "region.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 3, "region.tbl"));
      d.regions.push_back({f[1], f[2]});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "nation.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 3, "nation.tbl"));
      MF_ASSIGN_OR_RETURN(int region,
                          ParseIndex(f[2], d.regions.size(), "region"));
      d.nations.push_back({f[1], region});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "supplier.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 6, "supplier.tbl"));
      MF_ASSIGN_OR_RETURN(int nation,
                          ParseIndex(f[3], d.nations.size(), "nation"));
      d.suppliers.push_back(
          {f[1], f[2], f[4], std::atof(f[5].c_str()), nation});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "part.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 8, "part.tbl"));
      d.parts.push_back({f[1], f[2], f[3], f[4], f[6],
                         std::atoi(f[5].c_str()), std::atof(f[7].c_str())});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "partsupp.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 4, "partsupp.tbl"));
      MF_ASSIGN_OR_RETURN(int part, ParseIndex(f[0], d.parts.size(),
                                               "part"));
      MF_ASSIGN_OR_RETURN(int supp,
                          ParseIndex(f[1], d.suppliers.size(), "supplier"));
      d.partsupps.push_back(
          {part, supp, std::atof(f[3].c_str()), std::atoi(f[2].c_str())});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "customer.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 7, "customer.tbl"));
      MF_ASSIGN_OR_RETURN(int nation,
                          ParseIndex(f[3], d.nations.size(), "nation"));
      d.customers.push_back(
          {f[1], f[2], f[4], f[6], std::atof(f[5].c_str()), nation});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "orders.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 8, "orders.tbl"));
      MF_ASSIGN_OR_RETURN(int cust,
                          ParseIndex(f[1], d.customers.size(), "customer"));
      MF_ASSIGN_OR_RETURN(Date odate, ParseDate(f[4]));
      d.orders.push_back({cust, f[2].empty() ? '?' : f[2][0],
                          std::atof(f[3].c_str()), odate, f[5], f[6],
                          f[7]});
    }
  }
  {
    MF_ASSIGN_OR_RETURN(auto lines, ReadLines(base / "lineitem.tbl"));
    for (const auto& line : lines) {
      MF_ASSIGN_OR_RETURN(auto f, SplitLine(line, 14, "lineitem.tbl"));
      TpcdData::Item it;
      MF_ASSIGN_OR_RETURN(it.order,
                          ParseIndex(f[0], d.orders.size(), "order"));
      MF_ASSIGN_OR_RETURN(it.part, ParseIndex(f[1], d.parts.size(),
                                              "part"));
      MF_ASSIGN_OR_RETURN(it.supplier,
                          ParseIndex(f[2], d.suppliers.size(), "supplier"));
      it.quantity = std::atoi(f[3].c_str());
      it.extendedprice = std::atof(f[4].c_str());
      it.discount = std::atof(f[5].c_str());
      it.tax = std::atof(f[6].c_str());
      it.returnflag = f[7].empty() ? '?' : f[7][0];
      it.linestatus = f[8].empty() ? '?' : f[8][0];
      MF_ASSIGN_OR_RETURN(it.shipdate, ParseDate(f[9]));
      MF_ASSIGN_OR_RETURN(it.commitdate, ParseDate(f[10]));
      MF_ASSIGN_OR_RETURN(it.receiptdate, ParseDate(f[11]));
      it.shipmode = f[12];
      it.shipinstruct = f[13];
      d.items.push_back(std::move(it));
    }
  }

  // Recover the clerk pool size from the data (probe_clerk depends on it).
  int max_clerk = 1;
  for (const auto& o : d.orders) {
    const size_t hash_pos = o.clerk.rfind('#');
    if (hash_pos != std::string::npos) {
      max_clerk = std::max(max_clerk,
                           std::atoi(o.clerk.c_str() + hash_pos + 1));
    }
  }
  d.num_clerks = max_clerk * 2;  // generator draws clerks in [1, n)
  return d;
}

}  // namespace moaflat::tpcd
