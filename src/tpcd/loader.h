#ifndef MOAFLAT_TPCD_LOADER_H_
#define MOAFLAT_TPCD_LOADER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "moa/database.h"
#include "relational/row_store.h"
#include "tpcd/generator.h"

namespace moaflat::tpcd {

/// Per-phase timings and sizes of the bulk load (the `load` row of Fig. 9
/// reports "ascii import and accelerator creation"; we break it down the
/// way Section 6 narrates: bulk load, extent + datavector creation, tail
/// reordering).
struct LoadStats {
  double bulk_load_sec = 0;
  double accel_sec = 0;
  double reorder_sec = 0;
  size_t base_bytes = 0;        // oid-ordered attribute BATs + row tables
  size_t datavector_bytes = 0;  // value vectors of the datavectors
};

/// Oid bases per class: oids are globally unique; the offset within the
/// base is the generator's 0-based row index.
inline constexpr Oid kRegionBase = Oid{1} << 32;
inline constexpr Oid kNationBase = Oid{2} << 32;
inline constexpr Oid kSupplierBase = Oid{3} << 32;
inline constexpr Oid kPartBase = Oid{4} << 32;
inline constexpr Oid kSuppliesBase = Oid{5} << 32;  // supplies set elements
inline constexpr Oid kCustomerBase = Oid{6} << 32;
inline constexpr Oid kOrderBase = Oid{7} << 32;
inline constexpr Oid kItemBase = Oid{8} << 32;

/// One loaded TPC-D database: the flattened MOA store (extents, tail-sorted
/// attribute BATs with datavectors, set-index BATs — Fig. 3 / Section 6)
/// plus the N-ary row store of the relational baseline.
struct TpcdInstance {
  moa::Database db;
  rel::RowDatabase rows;
  LoadStats stats;
  double scale_factor = 0;
  std::string probe_clerk;
  size_t num_items = 0;
};

/// The MOA class catalog of Fig. 1.
moa::Schema MakeTpcdSchema();

/// Loads generated data into both stores.
Result<std::shared_ptr<TpcdInstance>> Load(const TpcdData& data,
                                           double scale_factor);

/// Generates and loads in one step.
Result<std::shared_ptr<TpcdInstance>> MakeInstance(double scale_factor,
                                                   uint64_t seed = 19980223);

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_LOADER_H_
