#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "kernel/scalar_fn.h"
#include "relational/executor.h"
#include "tpcd/queries.h"

/// Row-store baseline implementations of the 15 TPC-D queries: the
/// stand-in for the paper's IBM DB2 comparison point. Each query produces
/// the same `check` value as its Monet twin (validated by the test suite).
namespace moaflat::tpcd {
namespace {

using rel::FetchFilter;
using rel::FullScan;
using rel::HashJoin;
using rel::HashSemijoin;
using rel::IndexRange;
using rel::RowId;
using rel::RowSet;
using rel::Table;

Value D(int y, int m, int d) {
  return Value::MakeDate(Date::FromYmd(y, m, d));
}

/// Revenue of a lineitem row.
double Rev(const Table& li, RowId r, int price_col, int disc_col) {
  return li.NumAt(r, price_col) * (1.0 - li.NumAt(r, disc_col));
}

struct Cols {
  const Table* t;
  explicit Cols(const Table* table) : t(table) {}
  int operator()(const char* name) const { return t->ColIndex(name); }
};

EngineRun Finish(size_t rows, double check, double item_sel = -1) {
  EngineRun run;
  run.via = "row";
  run.rows = rows;
  run.check = check;
  run.item_selectivity = item_sel;
  return run;
}

Result<EngineRun> BaselineQ1(TpcdInstance& inst) {
  Table& li = *inst.rows.Find("lineitem");
  Cols c(&li);
  const int ship = c("l_shipdate"), rf = c("l_returnflag"),
            ls = c("l_linestatus"), price = c("l_extendedprice"),
            disc = c("l_discount");
  RowSet sel = IndexRange(li, "l_shipdate", Value(), D(1998, 9, 2));
  struct Acc {
    double disc_price = 0;
  };
  auto groups = rel::GroupBy<Acc>(
      sel,
      [&](RowId r) {
        return std::string(1, static_cast<char>(li.NumAt(r, rf))) +
               static_cast<char>(li.NumAt(r, ls));
      },
      [&](Acc* a, RowId r) { a->disc_price += Rev(li, r, price, disc); });
  (void)ship;
  double check = 0;
  for (auto& [k, a] : groups) check += a.disc_price;
  return Finish(groups.size(), check,
                static_cast<double>(sel.size()) / li.num_rows());
}

Result<EngineRun> BaselineQ2(TpcdInstance& inst) {
  Table& part = *inst.rows.Find("part");
  Table& ps = *inst.rows.Find("partsupp");
  Table& supp = *inst.rows.Find("supplier");
  Table& nation = *inst.rows.Find("nation");
  Table& region = *inst.rows.Find("region");
  Cols cp(&part);

  RowSet parts = FullScan(part, [&](RowId r) {
    return part.NumAt(r, cp("p_size")) == 15 &&
           kernel::LikeMatch(part.StrAt(r, cp("p_type")), "%BRASS");
  });
  RowSet regions = FullScan(region, [&](RowId r) {
    return region.StrAt(r, region.ColIndex("r_name")) == "EUROPE";
  });
  RowSet nations = HashSemijoin(FullScan(nation), "n_regionkey", regions,
                                "r_key");
  RowSet supps =
      HashSemijoin(FullScan(supp), "s_nationkey", nations, "n_key");
  RowSet pss = HashSemijoin(FullScan(ps), "ps_suppkey", supps, "s_key");
  RowSet pss2 = HashSemijoin(pss, "ps_partkey", parts, "p_key");

  const int pk = ps.ColIndex("ps_partkey"), cost = ps.ColIndex(
                                                "ps_supplycost");
  std::unordered_map<Oid, double> mins;
  for (RowId r : pss2.rows) {
    ps.TouchRow(r);
    const Oid key = ps.OidAt(r, pk);
    auto [it, fresh] = mins.try_emplace(key, ps.NumAt(r, cost));
    if (!fresh) it->second = std::min(it->second, ps.NumAt(r, cost));
  }
  double check = 0;
  for (auto& [k, v] : mins) check += v;
  return Finish(mins.size(), check);
}

Result<EngineRun> BaselineQ3(TpcdInstance& inst) {
  Table& cust = *inst.rows.Find("customer");
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  RowSet custs = FullScan(cust, [&](RowId r) {
    return cust.StrAt(r, cust.ColIndex("c_mktsegment")) == "BUILDING";
  });
  RowSet ords = IndexRange(ord, "o_orderdate", Value(), D(1995, 3, 14));
  RowSet ords2 = HashSemijoin(ords, "o_custkey", custs, "c_key");
  RowSet items = IndexRange(li, "l_shipdate", D(1995, 3, 16), Value());
  auto pairs = HashJoin(items, "l_orderkey", ords2, "o_key");

  const int price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount"),
            okey = li.ColIndex("l_orderkey");
  std::unordered_map<Oid, double> per_order;
  for (auto& [l, o] : pairs) {
    per_order[li.OidAt(l, okey)] += Rev(li, l, price, disc);
  }
  std::vector<double> revs;
  for (auto& [k, v] : per_order) revs.push_back(v);
  std::sort(revs.rbegin(), revs.rend());
  double check = 0;
  size_t n = std::min<size_t>(10, revs.size());
  for (size_t i = 0; i < n; ++i) check += revs[i];
  return Finish(n, check);
}

Result<EngineRun> BaselineQ4(TpcdInstance& inst) {
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  RowSet ords = IndexRange(ord, "o_orderdate", D(1993, 7, 1),
                           D(1993, 9, 30));
  const int commit = li.ColIndex("l_commitdate"),
            receipt = li.ColIndex("l_receiptdate");
  RowSet late = FullScan(
      li, [&](RowId r) { return li.NumAt(r, commit) < li.NumAt(r, receipt); });
  RowSet lateords = HashSemijoin(ords, "o_key", late, "l_orderkey");
  std::map<std::string, int64_t> counts;
  const int prio = ord.ColIndex("o_orderpriority");
  for (RowId r : lateords.rows) {
    ord.TouchRow(r);
    counts[std::string(ord.StrAt(r, prio))]++;
  }
  double check = 0;
  for (auto& [k, v] : counts) check += v;
  // Items qualifying = late items of the quarter's orders.
  RowSet lateitems = HashSemijoin(late, "l_orderkey", ords, "o_key");
  return Finish(counts.size(), check,
                static_cast<double>(lateitems.size()) / li.num_rows());
}

Result<EngineRun> BaselineQ5(TpcdInstance& inst) {
  Table& region = *inst.rows.Find("region");
  Table& nation = *inst.rows.Find("nation");
  Table& cust = *inst.rows.Find("customer");
  Table& supp = *inst.rows.Find("supplier");
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");

  RowSet regions = FullScan(region, [&](RowId r) {
    return region.StrAt(r, region.ColIndex("r_name")) == "ASIA";
  });
  RowSet nations =
      HashSemijoin(FullScan(nation), "n_regionkey", regions, "r_key");
  std::unordered_set<Oid> asia;
  for (RowId r : nations.rows) {
    asia.insert(nation.OidAt(r, nation.ColIndex("n_key")));
  }
  // Customer/supplier nation per key.
  std::unordered_map<Oid, Oid> cust_nat, supp_nat;
  for (RowId r : FullScan(cust).rows) {
    cust_nat[cust.OidAt(r, cust.ColIndex("c_key"))] =
        cust.OidAt(r, cust.ColIndex("c_nationkey"));
  }
  for (RowId r : FullScan(supp).rows) {
    supp_nat[supp.OidAt(r, supp.ColIndex("s_key"))] =
        supp.OidAt(r, supp.ColIndex("s_nationkey"));
  }
  RowSet ords =
      IndexRange(ord, "o_orderdate", D(1994, 1, 1), D(1994, 12, 31));
  std::unordered_map<Oid, Oid> order_cust;
  for (RowId r : FetchFilter(ords, {}).rows) {
    order_cust[ord.OidAt(r, ord.ColIndex("o_key"))] =
        ord.OidAt(r, ord.ColIndex("o_custkey"));
  }
  const int okey = li.ColIndex("l_orderkey"), skey = li.ColIndex("l_suppkey"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::map<Oid, double> per_nation;
  size_t qualifying = 0;
  for (RowId r : FullScan(li).rows) {
    auto o = order_cust.find(li.OidAt(r, okey));
    if (o == order_cust.end()) continue;
    const Oid cnat = cust_nat[o->second];
    const Oid snat = supp_nat[li.OidAt(r, skey)];
    if (cnat != snat || asia.count(snat) == 0) continue;
    per_nation[snat] += Rev(li, r, price, disc);
    ++qualifying;
  }
  double check = 0;
  for (auto& [k, v] : per_nation) check += v;
  return Finish(per_nation.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ6(TpcdInstance& inst) {
  Table& li = *inst.rows.Find("lineitem");
  const int disc = li.ColIndex("l_discount"), qty = li.ColIndex("l_quantity"),
            price = li.ColIndex("l_extendedprice");
  RowSet sel = IndexRange(li, "l_shipdate", D(1994, 1, 1), D(1994, 12, 31));
  RowSet sel2 = FetchFilter(sel, [&](RowId r) {
    const double d = li.NumAt(r, disc);
    return d >= 0.05 && d <= 0.07 && li.NumAt(r, qty) < 24;
  });
  double check = 0;
  for (RowId r : sel2.rows) {
    check += li.NumAt(r, price) * li.NumAt(r, disc);
  }
  return Finish(1, check,
                static_cast<double>(sel2.size()) / li.num_rows());
}

Result<EngineRun> BaselineQ7(TpcdInstance& inst) {
  Table& nation = *inst.rows.Find("nation");
  Table& cust = *inst.rows.Find("customer");
  Table& supp = *inst.rows.Find("supplier");
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");

  Oid fr = 0, de = 0;
  for (RowId r : FullScan(nation).rows) {
    const auto name = nation.StrAt(r, nation.ColIndex("n_name"));
    if (name == "FRANCE") fr = nation.OidAt(r, nation.ColIndex("n_key"));
    if (name == "GERMANY") de = nation.OidAt(r, nation.ColIndex("n_key"));
  }
  std::unordered_map<Oid, Oid> cust_nat, supp_nat, order_cust;
  for (RowId r : FullScan(cust).rows) {
    cust_nat[cust.OidAt(r, cust.ColIndex("c_key"))] =
        cust.OidAt(r, cust.ColIndex("c_nationkey"));
  }
  for (RowId r : FullScan(supp).rows) {
    supp_nat[supp.OidAt(r, supp.ColIndex("s_key"))] =
        supp.OidAt(r, supp.ColIndex("s_nationkey"));
  }
  for (RowId r : FullScan(ord).rows) {
    order_cust[ord.OidAt(r, ord.ColIndex("o_key"))] =
        ord.OidAt(r, ord.ColIndex("o_custkey"));
  }
  RowSet sel = IndexRange(li, "l_shipdate", D(1995, 1, 1), D(1996, 12, 31));
  const int okey = li.ColIndex("l_orderkey"), skey = li.ColIndex("l_suppkey"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount"), ship = li.ColIndex("l_shipdate");
  std::map<std::pair<Oid, int>, double> groups;
  size_t qualifying = 0;
  for (RowId r : FetchFilter(sel, {}).rows) {
    const Oid snat = supp_nat[li.OidAt(r, skey)];
    const Oid cnat = cust_nat[order_cust[li.OidAt(r, okey)]];
    const bool d1 = snat == fr && cnat == de;
    const bool d2 = snat == de && cnat == fr;
    if (!d1 && !d2) continue;
    const int year = Date(static_cast<int32_t>(li.NumAt(r, ship))).Year();
    groups[{snat, year}] += Rev(li, r, price, disc);
    ++qualifying;
  }
  double check = 0;
  for (auto& [k, v] : groups) check += v;
  return Finish(groups.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ8(TpcdInstance& inst) {
  Table& region = *inst.rows.Find("region");
  Table& nation = *inst.rows.Find("nation");
  Table& cust = *inst.rows.Find("customer");
  Table& supp = *inst.rows.Find("supplier");
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  Table& part = *inst.rows.Find("part");

  RowSet regions = FullScan(region, [&](RowId r) {
    return region.StrAt(r, region.ColIndex("r_name")) == "AMERICA";
  });
  RowSet nations =
      HashSemijoin(FullScan(nation), "n_regionkey", regions, "r_key");
  std::unordered_set<Oid> america;
  for (RowId r : nations.rows) {
    america.insert(nation.OidAt(r, nation.ColIndex("n_key")));
  }
  Oid brazil = 0;
  for (RowId r : FullScan(nation).rows) {
    if (nation.StrAt(r, nation.ColIndex("n_name")) == "BRAZIL") {
      brazil = nation.OidAt(r, nation.ColIndex("n_key"));
    }
  }
  std::unordered_set<Oid> steel_parts;
  for (RowId r : FullScan(part).rows) {
    if (part.StrAt(r, part.ColIndex("p_type")) == "ECONOMY ANODIZED STEEL") {
      steel_parts.insert(part.OidAt(r, part.ColIndex("p_key")));
    }
  }
  std::unordered_map<Oid, Oid> cust_nat, supp_nat;
  std::unordered_map<Oid, std::pair<Oid, Date>> order_info;
  for (RowId r : FullScan(cust).rows) {
    cust_nat[cust.OidAt(r, cust.ColIndex("c_key"))] =
        cust.OidAt(r, cust.ColIndex("c_nationkey"));
  }
  for (RowId r : FullScan(supp).rows) {
    supp_nat[supp.OidAt(r, supp.ColIndex("s_key"))] =
        supp.OidAt(r, supp.ColIndex("s_nationkey"));
  }
  for (RowId r : FullScan(ord).rows) {
    order_info[ord.OidAt(r, ord.ColIndex("o_key"))] = {
        ord.OidAt(r, ord.ColIndex("o_custkey")),
        Date(static_cast<int32_t>(ord.NumAt(r, ord.ColIndex("o_orderdate"))))};
  }
  const Date lo = Date::FromYmd(1995, 1, 1), hi = Date::FromYmd(1996, 12, 31);
  const int okey = li.ColIndex("l_orderkey"), skey = li.ColIndex("l_suppkey"),
            pkey = li.ColIndex("l_partkey"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::map<int, std::pair<double, double>> per_year;  // total, brazil
  size_t qualifying = 0;
  for (RowId r : FullScan(li).rows) {
    if (steel_parts.count(li.OidAt(r, pkey)) == 0) continue;
    const auto& [ckey, odate] = order_info[li.OidAt(r, okey)];
    if (odate < lo || hi < odate) continue;
    if (america.count(cust_nat[ckey]) == 0) continue;
    const double rev = Rev(li, r, price, disc);
    auto& [total, br] = per_year[odate.Year()];
    total += rev;
    if (supp_nat[li.OidAt(r, skey)] == brazil) br += rev;
    ++qualifying;
  }
  double check = 0;
  for (auto& [y, tb] : per_year) check += tb.first + tb.second;
  return Finish(per_year.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ9(TpcdInstance& inst) {
  Table& part = *inst.rows.Find("part");
  Table& supp = *inst.rows.Find("supplier");
  Table& ps = *inst.rows.Find("partsupp");
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");

  std::unordered_set<Oid> green;
  for (RowId r : FullScan(part).rows) {
    if (kernel::LikeMatch(part.StrAt(r, part.ColIndex("p_name")),
                          "%green%")) {
      green.insert(part.OidAt(r, part.ColIndex("p_key")));
    }
  }
  std::unordered_map<Oid, Oid> supp_nat;
  for (RowId r : FullScan(supp).rows) {
    supp_nat[supp.OidAt(r, supp.ColIndex("s_key"))] =
        supp.OidAt(r, supp.ColIndex("s_nationkey"));
  }
  std::unordered_map<Oid, Date> order_date;
  for (RowId r : FullScan(ord).rows) {
    order_date[ord.OidAt(r, ord.ColIndex("o_key"))] =
        Date(static_cast<int32_t>(ord.NumAt(r, ord.ColIndex("o_orderdate"))));
  }
  // (part, supplier) -> cost.
  std::map<std::pair<Oid, Oid>, double> cost;
  for (RowId r : FullScan(ps).rows) {
    cost[{ps.OidAt(r, ps.ColIndex("ps_partkey")),
          ps.OidAt(r, ps.ColIndex("ps_suppkey"))}] =
        ps.NumAt(r, ps.ColIndex("ps_supplycost"));
  }
  const int okey = li.ColIndex("l_orderkey"), skey = li.ColIndex("l_suppkey"),
            pkey = li.ColIndex("l_partkey"), qty = li.ColIndex("l_quantity"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::map<std::pair<Oid, int>, double> groups;
  size_t qualifying = 0;
  for (RowId r : FullScan(li).rows) {
    const Oid p = li.OidAt(r, pkey);
    if (green.count(p) == 0) continue;
    const Oid s = li.OidAt(r, skey);
    const double profit =
        Rev(li, r, price, disc) - cost[{p, s}] * li.NumAt(r, qty);
    groups[{supp_nat[s], order_date[li.OidAt(r, okey)].Year()}] += profit;
    ++qualifying;
  }
  double check = 0;
  for (auto& [k, v] : groups) check += v;
  return Finish(groups.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ10(TpcdInstance& inst) {
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  std::unordered_map<Oid, std::pair<Oid, Date>> order_info;
  for (RowId r : FullScan(ord).rows) {
    order_info[ord.OidAt(r, ord.ColIndex("o_key"))] = {
        ord.OidAt(r, ord.ColIndex("o_custkey")),
        Date(static_cast<int32_t>(ord.NumAt(r, ord.ColIndex("o_orderdate"))))};
  }
  const Date lo = Date::FromYmd(1993, 10, 1), hi = Date::FromYmd(1993, 12, 31);
  const int okey = li.ColIndex("l_orderkey"), rf = li.ColIndex("l_returnflag"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::unordered_map<Oid, double> per_cust;
  for (RowId r : FullScan(li).rows) {
    if (static_cast<char>(li.NumAt(r, rf)) != 'R') continue;
    const auto& [ckey, odate] = order_info[li.OidAt(r, okey)];
    if (odate < lo || hi < odate) continue;
    per_cust[ckey] += Rev(li, r, price, disc);
  }
  std::vector<double> revs;
  for (auto& [c, v] : per_cust) revs.push_back(v);
  std::sort(revs.rbegin(), revs.rend());
  const size_t n = std::min<size_t>(20, revs.size());
  double check = 0;
  for (size_t i = 0; i < n; ++i) check += revs[i];
  return Finish(n, check);
}

Result<EngineRun> BaselineQ11(TpcdInstance& inst) {
  Table& nation = *inst.rows.Find("nation");
  Table& supp = *inst.rows.Find("supplier");
  Table& ps = *inst.rows.Find("partsupp");
  Oid germany = 0;
  for (RowId r : FullScan(nation).rows) {
    if (nation.StrAt(r, nation.ColIndex("n_name")) == "GERMANY") {
      germany = nation.OidAt(r, nation.ColIndex("n_key"));
    }
  }
  std::unordered_set<Oid> german_supps;
  for (RowId r : FullScan(supp).rows) {
    if (supp.OidAt(r, supp.ColIndex("s_nationkey")) == germany) {
      german_supps.insert(supp.OidAt(r, supp.ColIndex("s_key")));
    }
  }
  const int pk = ps.ColIndex("ps_partkey"), sk = ps.ColIndex("ps_suppkey"),
            cost = ps.ColIndex("ps_supplycost"),
            avail = ps.ColIndex("ps_availqty");
  std::unordered_map<Oid, double> per_part;
  double total = 0;
  for (RowId r : FullScan(ps).rows) {
    if (german_supps.count(ps.OidAt(r, sk)) == 0) continue;
    const double v = ps.NumAt(r, cost) * ps.NumAt(r, avail);
    per_part[ps.OidAt(r, pk)] += v;
    total += v;
  }
  const double threshold = total * 0.001;
  double check = 0;
  size_t rows = 0;
  for (auto& [p, v] : per_part) {
    if (v > threshold) {
      check += v;
      ++rows;
    }
  }
  return Finish(rows, check);
}

Result<EngineRun> BaselineQ12(TpcdInstance& inst) {
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  std::unordered_map<Oid, std::string> order_prio;
  for (RowId r : FullScan(ord).rows) {
    order_prio[ord.OidAt(r, ord.ColIndex("o_key"))] =
        std::string(ord.StrAt(r, ord.ColIndex("o_orderpriority")));
  }
  const Date lo = Date::FromYmd(1994, 1, 1), hi = Date::FromYmd(1994, 12, 31);
  const int okey = li.ColIndex("l_orderkey"), mode = li.ColIndex("l_shipmode"),
            commit = li.ColIndex("l_commitdate"),
            receipt = li.ColIndex("l_receiptdate"),
            ship = li.ColIndex("l_shipdate");
  std::map<std::string, std::pair<int64_t, int64_t>> counts;  // high, low
  size_t qualifying = 0;
  for (RowId r : FullScan(li).rows) {
    const auto sm = li.StrAt(r, mode);
    if (sm != "MAIL" && sm != "SHIP") continue;
    const Date rd = Date(static_cast<int32_t>(li.NumAt(r, receipt)));
    if (rd < lo || hi < rd) continue;
    if (!(li.NumAt(r, commit) < li.NumAt(r, receipt) &&
          li.NumAt(r, ship) < li.NumAt(r, commit))) {
      continue;
    }
    const std::string& prio = order_prio[li.OidAt(r, okey)];
    auto& [high, low] = counts[std::string(sm)];
    if (prio == "1-URGENT" || prio == "2-HIGH") {
      ++high;
    } else {
      ++low;
    }
    ++qualifying;
  }
  double check = 0;
  for (auto& [k, hl] : counts) check += hl.first + hl.second;
  return Finish(counts.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ13(TpcdInstance& inst) {
  Table& ord = *inst.rows.Find("orders");
  Table& li = *inst.rows.Find("lineitem");
  // Index-select the clerk's orders, then fetch their returned items.
  RowSet ords = IndexRange(ord, "o_clerk", Value::Str(inst.probe_clerk),
                           Value::Str(inst.probe_clerk));
  std::unordered_map<Oid, int> order_year;
  for (RowId r : FetchFilter(ords, {}).rows) {
    order_year[ord.OidAt(r, ord.ColIndex("o_key"))] =
        Date(static_cast<int32_t>(ord.NumAt(r, ord.ColIndex("o_orderdate"))))
            .Year();
  }
  const int okey = li.ColIndex("l_orderkey"), rf = li.ColIndex("l_returnflag"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::map<int, double> per_year;
  size_t qualifying = 0;
  for (RowId r : FullScan(li).rows) {
    auto it = order_year.find(li.OidAt(r, okey));
    if (it == order_year.end()) continue;
    if (static_cast<char>(li.NumAt(r, rf)) != 'R') continue;
    per_year[it->second] += Rev(li, r, price, disc);
    ++qualifying;
  }
  double check = 0;
  for (auto& [y, v] : per_year) check += v;
  return Finish(per_year.size(), check,
                static_cast<double>(qualifying) / li.num_rows());
}

Result<EngineRun> BaselineQ14(TpcdInstance& inst) {
  Table& part = *inst.rows.Find("part");
  Table& li = *inst.rows.Find("lineitem");
  std::unordered_set<Oid> promo;
  for (RowId r : FullScan(part).rows) {
    if (kernel::LikeMatch(part.StrAt(r, part.ColIndex("p_type")),
                          "PROMO%")) {
      promo.insert(part.OidAt(r, part.ColIndex("p_key")));
    }
  }
  RowSet sel = IndexRange(li, "l_shipdate", D(1995, 9, 1), D(1995, 9, 30));
  const int pkey = li.ColIndex("l_partkey"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  double total = 0, promo_rev = 0;
  for (RowId r : FetchFilter(sel, {}).rows) {
    const double rev = Rev(li, r, price, disc);
    total += rev;
    if (promo.count(li.OidAt(r, pkey)) > 0) promo_rev += rev;
  }
  return Finish(1, 100.0 * promo_rev / total,
                static_cast<double>(sel.size()) / li.num_rows());
}

Result<EngineRun> BaselineQ15(TpcdInstance& inst) {
  Table& li = *inst.rows.Find("lineitem");
  RowSet sel = IndexRange(li, "l_shipdate", D(1996, 1, 1), D(1996, 3, 31));
  const int skey = li.ColIndex("l_suppkey"),
            price = li.ColIndex("l_extendedprice"),
            disc = li.ColIndex("l_discount");
  std::unordered_map<Oid, double> per_supp;
  for (RowId r : FetchFilter(sel, {}).rows) {
    per_supp[li.OidAt(r, skey)] += Rev(li, r, price, disc);
  }
  double best = 0;
  for (auto& [s, v] : per_supp) best = std::max(best, v);
  return Finish(1, best, static_cast<double>(sel.size()) / li.num_rows());
}

}  // namespace

Result<EngineRun> QuerySuite::RunBaseline(int q,
                                          const kernel::ExecContext& ctx) {
  // The relational baseline accounts IO through the scoped accountant;
  // bind the context's sinks for the duration of the run so its page
  // faults and traces are attributed to this context only.
  storage::IoScope io_scope(ctx.io());
  kernel::TraceScope trace_scope(ctx.tracer());
  switch (q) {
    case 1: return BaselineQ1(*inst_);
    case 2: return BaselineQ2(*inst_);
    case 3: return BaselineQ3(*inst_);
    case 4: return BaselineQ4(*inst_);
    case 5: return BaselineQ5(*inst_);
    case 6: return BaselineQ6(*inst_);
    case 7: return BaselineQ7(*inst_);
    case 8: return BaselineQ8(*inst_);
    case 9: return BaselineQ9(*inst_);
    case 10: return BaselineQ10(*inst_);
    case 11: return BaselineQ11(*inst_);
    case 12: return BaselineQ12(*inst_);
    case 13: return BaselineQ13(*inst_);
    case 14: return BaselineQ14(*inst_);
    case 15: return BaselineQ15(*inst_);
    default:
      return Status::OutOfRange("TPC-D query number must be 1..15");
  }
}

}  // namespace moaflat::tpcd
