#include "moa/query.h"
#include "moa/result_view.h"
#include "tpcd/mil_run.h"
#include "tpcd/queries.h"

/// Monet-side TPC-D queries. Q1, Q3, Q6, Q10 and Q13 go through the full
/// MOA pipeline (parse -> flatten -> MIL); the remaining queries are
/// hand-flattened MIL, which is faithful to the paper: "the TPC-D queries
/// were hand-translated from SQL into MOA" — our rewriter covers the
/// select/project/nest/aggregate fragment, and the rest follows the same
/// translation rules by hand.
namespace moaflat::tpcd {
namespace {

using mil::L;
using mil::V;

Value D(int y, int m, int d) {
  return Value::MakeDate(Date::FromYmd(y, m, d));
}

/// Runs MOA text and converts it into an EngineRun whose `check` is the
/// sum of the named numeric field over all result elements (or the scalar
/// itself for top-level aggregates).
Result<EngineRun> RunMoaChecked(const kernel::ExecContext& ctx,
                                const TpcdInstance& inst,
                                const std::string& text,
                                const std::string& check_field) {
  MF_ASSIGN_OR_RETURN(moa::QueryResult qr, RunMoa(ctx, inst.db, text));
  EngineRun run;
  run.via = "moa";
  run.traces = qr.traces;

  const moa::StructExpr& root = *qr.translation.result;
  if (root.kind == moa::StructExpr::Kind::kAtom) {
    MF_ASSIGN_OR_RETURN(Value v, qr.env.GetValue(root.var));
    MF_ASSIGN_OR_RETURN(double dv, v.ToDouble());
    run.rows = 1;
    run.check = dv;
    return run;
  }

  moa::ResultView view(&qr.env);
  MF_ASSIGN_OR_RETURN(std::vector<Oid> ids, view.SetIds(root));
  run.rows = ids.size();
  if (!check_field.empty()) {
    MF_ASSIGN_OR_RETURN(const moa::StructExpr* field,
                        view.Field(*root.elem, check_field));
    double total = 0;
    for (Oid id : ids) {
      MF_ASSIGN_OR_RETURN(Value v, view.AtomValue(*field, id));
      if (!v.is_nil()) {
        MF_ASSIGN_OR_RETURN(double dv, v.ToDouble());
        total += dv;
      }
    }
    run.check = total;
  }
  return run;
}

/// rev := [*](semijoin(price, sel), [-](1.0, semijoin(discount, sel))):
/// the canonical revenue computation over a selected item set; the two
/// semijoins hit the datavector path and come out synced.
Result<std::string> Revenue(MilRun& m, const std::string& sel_items) {
  MF_ASSIGN_OR_RETURN(
      std::string price,
      m.Op("semijoin", {V("Item_extendedprice"), V(sel_items)}));
  MF_ASSIGN_OR_RETURN(std::string disc,
                      m.Op("semijoin", {V("Item_discount"), V(sel_items)}));
  MF_ASSIGN_OR_RETURN(std::string factor,
                      m.Op("[-]", {L(Value::Dbl(1.0)), V(disc)}));
  return m.Op("[*]", {V(price), V(factor)});
}

EngineRun FinishMil(MilRun& m, size_t rows, double check,
                    double item_sel = -1) {
  EngineRun run;
  run.via = "mil";
  run.rows = rows;
  run.check = check;
  run.item_selectivity = item_sel;
  run.traces = m.traces();
  return run;
}

// ------------------------------------------------------------------- Q2
// Cheapest supplier per qualifying part in a region.
Result<EngineRun> MonetQ2(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(std::string psize,
                      m.Op("select", {V("Part_size"), L(Value::Int(15))}));
  MF_ASSIGN_OR_RETURN(std::string ptype,
                      m.Op("semijoin", {V("Part_type"), V(psize)}));
  MF_ASSIGN_OR_RETURN(
      std::string parts,
      m.Op("select.like", {V(ptype), L(Value::Str("%BRASS"))}));
  MF_ASSIGN_OR_RETURN(
      std::string reg,
      m.Op("select", {V("Region_name"), L(Value::Str("EUROPE"))}));
  MF_ASSIGN_OR_RETURN(std::string nats,
                      m.Op("join", {V("Nation_region"), V(reg)}));
  MF_ASSIGN_OR_RETURN(std::string supps,
                      m.Op("join", {V("Supplier_nation"), V(nats)}));
  MF_ASSIGN_OR_RETURN(std::string elems,
                      m.Op("semijoin", {V("Supplier_supplies"), V(supps)}));
  MF_ASSIGN_OR_RETURN(std::string byelem, m.Op("mirror", {V(elems)}));
  MF_ASSIGN_OR_RETURN(
      std::string eparts,
      m.Op("semijoin", {V("Supplier_supplies_part"), V(byelem)}));
  MF_ASSIGN_OR_RETURN(std::string em, m.Op("mirror", {V(eparts)}));
  MF_ASSIGN_OR_RETURN(std::string sel, m.Op("semijoin", {V(em), V(parts)}));
  MF_ASSIGN_OR_RETURN(std::string selm, m.Op("mirror", {V(sel)}));
  MF_ASSIGN_OR_RETURN(
      std::string costs,
      m.Op("semijoin", {V("Supplier_supplies_cost"), V(selm)}));
  MF_ASSIGN_OR_RETURN(std::string percost,
                      m.Op("join", {V(sel), V(costs)}));
  MF_ASSIGN_OR_RETURN(std::string mins, m.Op("{min}", {V(percost)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(mins));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(mins));
  return FinishMil(m, rows, check);
}

// ------------------------------------------------------------------- Q4
// Order priority checking: orders of a quarter with >= 1 late item.
Result<EngineRun> MonetQ4(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string ords,
      m.Op("select",
           {V("Order_orderdate"), L(D(1993, 7, 1)), L(D(1993, 9, 30))}));
  MF_ASSIGN_OR_RETURN(std::string items,
                      m.Op("join", {V("Item_order"), V(ords)}));
  MF_ASSIGN_OR_RETURN(std::string commit,
                      m.Op("semijoin", {V("Item_commitdate"), V(items)}));
  MF_ASSIGN_OR_RETURN(std::string receipt,
                      m.Op("semijoin", {V("Item_receiptdate"), V(items)}));
  MF_ASSIGN_OR_RETURN(std::string late,
                      m.Op("[<]", {V(commit), V(receipt)}));
  MF_ASSIGN_OR_RETURN(std::string lates,
                      m.Op("select", {V(late), L(Value::Bit(true))}));
  MF_ASSIGN_OR_RETURN(std::string lords,
                      m.Op("semijoin", {V("Item_order"), V(lates)}));
  MF_ASSIGN_OR_RETURN(std::string lordm, m.Op("mirror", {V(lords)}));
  MF_ASSIGN_OR_RETURN(std::string om, m.Op("hunique", {V(lordm)}));
  MF_ASSIGN_OR_RETURN(std::string prio,
                      m.Op("semijoin", {V("Order_orderpriority"), V(om)}));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(prio)}));
  MF_ASSIGN_OR_RETURN(std::string gm, m.Op("mirror", {V(g)}));
  MF_ASSIGN_OR_RETURN(std::string cnt, m.Op("{count}", {V(gm)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(cnt));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(cnt));
  MF_ASSIGN_OR_RETURN(size_t nlate, m.CountOf(lates));
  return FinishMil(m, rows, check,
                   static_cast<double>(nlate) / inst.num_items);
}

// ------------------------------------------------------------------- Q5
// Revenue per local supplier nation within a region and year.
Result<EngineRun> MonetQ5(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string reg,
      m.Op("select", {V("Region_name"), L(Value::Str("ASIA"))}));
  MF_ASSIGN_OR_RETURN(std::string nats,
                      m.Op("join", {V("Nation_region"), V(reg)}));
  MF_ASSIGN_OR_RETURN(
      std::string ords,
      m.Op("select",
           {V("Order_orderdate"), L(D(1994, 1, 1)), L(D(1994, 12, 31))}));
  MF_ASSIGN_OR_RETURN(std::string items,
                      m.Op("join", {V("Item_order"), V(ords)}));
  MF_ASSIGN_OR_RETURN(std::string iord,
                      m.Op("semijoin", {V("Item_order"), V(items)}));
  MF_ASSIGN_OR_RETURN(std::string icust,
                      m.Op("join", {V(iord), V("Order_cust")}));
  MF_ASSIGN_OR_RETURN(std::string icnat,
                      m.Op("join", {V(icust), V("Customer_nation")}));
  MF_ASSIGN_OR_RETURN(std::string isupp,
                      m.Op("semijoin", {V("Item_supplier"), V(items)}));
  MF_ASSIGN_OR_RETURN(std::string isnat,
                      m.Op("join", {V(isupp), V("Supplier_nation")}));
  MF_ASSIGN_OR_RETURN(std::string same, m.Op("[=]", {V(icnat), V(isnat)}));
  MF_ASSIGN_OR_RETURN(std::string local,
                      m.Op("select", {V(same), L(Value::Bit(true))}));
  MF_ASSIGN_OR_RETURN(std::string lnat,
                      m.Op("semijoin", {V(isnat), V(local)}));
  MF_ASSIGN_OR_RETURN(std::string asian, m.Op("join", {V(lnat), V(nats)}));
  MF_ASSIGN_OR_RETURN(std::string natref,
                      m.Op("semijoin", {V(lnat), V(asian)}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, asian));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(natref)}));
  MF_ASSIGN_OR_RETURN(std::string idx, m.Op("mirror", {V(g)}));
  MF_ASSIGN_OR_RETURN(std::string revg, m.Op("join", {V(idx), V(rev)}));
  MF_ASSIGN_OR_RETURN(std::string sums, m.Op("{sum}", {V(revg)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(sums));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(sums));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(asian));
  return FinishMil(m, rows, check,
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------- Q7
// Volume of goods shipped between two nations, grouped by direction/year.
Result<EngineRun> MonetQ7(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string n1,
      m.Op("select", {V("Nation_name"), L(Value::Str("FRANCE"))}));
  MF_ASSIGN_OR_RETURN(
      std::string n2,
      m.Op("select", {V("Nation_name"), L(Value::Str("GERMANY"))}));
  MF_ASSIGN_OR_RETURN(
      std::string sh,
      m.Op("select",
           {V("Item_shipdate"), L(D(1995, 1, 1)), L(D(1996, 12, 31))}));
  MF_ASSIGN_OR_RETURN(std::string isupp,
                      m.Op("semijoin", {V("Item_supplier"), V(sh)}));
  MF_ASSIGN_OR_RETURN(std::string isnat,
                      m.Op("join", {V(isupp), V("Supplier_nation")}));
  MF_ASSIGN_OR_RETURN(std::string iord,
                      m.Op("semijoin", {V("Item_order"), V(sh)}));
  MF_ASSIGN_OR_RETURN(std::string icust,
                      m.Op("join", {V(iord), V("Order_cust")}));
  MF_ASSIGN_OR_RETURN(std::string icnat,
                      m.Op("join", {V(icust), V("Customer_nation")}));
  MF_ASSIGN_OR_RETURN(std::string s_fr, m.Op("join", {V(isnat), V(n1)}));
  MF_ASSIGN_OR_RETURN(std::string c_de, m.Op("join", {V(icnat), V(n2)}));
  MF_ASSIGN_OR_RETURN(std::string pair1,
                      m.Op("semijoin", {V(s_fr), V(c_de)}));
  MF_ASSIGN_OR_RETURN(std::string s_de, m.Op("join", {V(isnat), V(n2)}));
  MF_ASSIGN_OR_RETURN(std::string c_fr, m.Op("join", {V(icnat), V(n1)}));
  MF_ASSIGN_OR_RETURN(std::string pair2,
                      m.Op("semijoin", {V(s_de), V(c_fr)}));
  MF_ASSIGN_OR_RETURN(std::string all, m.Op("kunion", {V(pair1), V(pair2)}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, all));
  MF_ASSIGN_OR_RETURN(std::string gnat,
                      m.Op("semijoin", {V(isnat), V(all)}));
  MF_ASSIGN_OR_RETURN(std::string shipd,
                      m.Op("semijoin", {V("Item_shipdate"), V(all)}));
  MF_ASSIGN_OR_RETURN(std::string year, m.Op("[year]", {V(shipd)}));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(gnat)}));
  MF_ASSIGN_OR_RETURN(std::string g2, m.Op("group", {V(g), V(year)}));
  MF_ASSIGN_OR_RETURN(std::string idx, m.Op("mirror", {V(g2)}));
  MF_ASSIGN_OR_RETURN(std::string revg, m.Op("join", {V(idx), V(rev)}));
  MF_ASSIGN_OR_RETURN(std::string sums, m.Op("{sum}", {V(revg)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(sums));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(sums));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(all));
  return FinishMil(m, rows, check,
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------- Q8
// National market share within a region for one part type.
Result<EngineRun> MonetQ8(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string parts,
      m.Op("select",
           {V("Part_type"), L(Value::Str("ECONOMY ANODIZED STEEL"))}));
  MF_ASSIGN_OR_RETURN(std::string mi,
                      m.Op("join", {V("Item_part"), V(parts)}));
  MF_ASSIGN_OR_RETURN(std::string iord,
                      m.Op("semijoin", {V("Item_order"), V(mi)}));
  MF_ASSIGN_OR_RETURN(std::string iodate,
                      m.Op("join", {V(iord), V("Order_orderdate")}));
  MF_ASSIGN_OR_RETURN(
      std::string sel,
      m.Op("select", {V(iodate), L(D(1995, 1, 1)), L(D(1996, 12, 31))}));
  MF_ASSIGN_OR_RETURN(
      std::string reg,
      m.Op("select", {V("Region_name"), L(Value::Str("AMERICA"))}));
  MF_ASSIGN_OR_RETURN(std::string nats,
                      m.Op("join", {V("Nation_region"), V(reg)}));
  MF_ASSIGN_OR_RETURN(std::string iord2,
                      m.Op("semijoin", {V("Item_order"), V(sel)}));
  MF_ASSIGN_OR_RETURN(std::string icust,
                      m.Op("join", {V(iord2), V("Order_cust")}));
  MF_ASSIGN_OR_RETURN(std::string icnat,
                      m.Op("join", {V(icust), V("Customer_nation")}));
  MF_ASSIGN_OR_RETURN(std::string amer, m.Op("join", {V(icnat), V(nats)}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, amer));
  MF_ASSIGN_OR_RETURN(std::string iord3,
                      m.Op("semijoin", {V("Item_order"), V(amer)}));
  MF_ASSIGN_OR_RETURN(std::string odate,
                      m.Op("join", {V(iord3), V("Order_orderdate")}));
  MF_ASSIGN_OR_RETURN(std::string year, m.Op("[year]", {V(odate)}));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(year)}));
  MF_ASSIGN_OR_RETURN(std::string idx, m.Op("mirror", {V(g)}));
  MF_ASSIGN_OR_RETURN(std::string revg, m.Op("join", {V(idx), V(rev)}));
  MF_ASSIGN_OR_RETURN(std::string tot, m.Op("{sum}", {V(revg)}));
  MF_ASSIGN_OR_RETURN(
      std::string nbr,
      m.Op("select", {V("Nation_name"), L(Value::Str("BRAZIL"))}));
  MF_ASSIGN_OR_RETURN(std::string isupp,
                      m.Op("semijoin", {V("Item_supplier"), V(amer)}));
  MF_ASSIGN_OR_RETURN(std::string isnat,
                      m.Op("join", {V(isupp), V("Supplier_nation")}));
  MF_ASSIGN_OR_RETURN(std::string br, m.Op("join", {V(isnat), V(nbr)}));
  MF_ASSIGN_OR_RETURN(std::string revbr,
                      m.Op("semijoin", {V(rev), V(br)}));
  MF_ASSIGN_OR_RETURN(std::string revbrg,
                      m.Op("join", {V(idx), V(revbr)}));
  MF_ASSIGN_OR_RETURN(std::string brtot, m.Op("{sum}", {V(revbrg)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(tot));
  MF_ASSIGN_OR_RETURN(double total, m.SumTail(tot));
  MF_ASSIGN_OR_RETURN(double brazil, m.SumTail(brtot));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(amer));
  return FinishMil(m, rows, total + brazil,
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------- Q9
// Product-type profit by nation and year; requires matching each item to
// its (part, supplier) supplies element — the pair-matching MIL below uses
// mark() to key candidate pairs.
Result<EngineRun> MonetQ9(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string parts,
      m.Op("select.like", {V("Part_name"), L(Value::Str("%green%"))}));
  MF_ASSIGN_OR_RETURN(std::string mi,
                      m.Op("join", {V("Item_part"), V(parts)}));
  MF_ASSIGN_OR_RETURN(std::string ipart,
                      m.Op("semijoin", {V("Item_part"), V(mi)}));
  MF_ASSIGN_OR_RETURN(std::string epartm,
                      m.Op("mirror", {V("Supplier_supplies_part")}));
  MF_ASSIGN_OR_RETURN(std::string cand,
                      m.Op("join", {V(ipart), V(epartm)}));
  MF_ASSIGN_OR_RETURN(std::string candmark,
                      m.Op("mark", {V(cand), L(Value::MakeOid(0))}));
  MF_ASSIGN_OR_RETURN(std::string pair_item,
                      m.Op("mirror", {V(candmark)}));
  MF_ASSIGN_OR_RETURN(std::string candm, m.Op("mirror", {V(cand)}));
  MF_ASSIGN_OR_RETURN(std::string candm2,
                      m.Op("mark", {V(candm), L(Value::MakeOid(0))}));
  MF_ASSIGN_OR_RETURN(std::string pair_elem,
                      m.Op("mirror", {V(candm2)}));
  MF_ASSIGN_OR_RETURN(std::string esupp,
                      m.Op("mirror", {V("Supplier_supplies")}));
  MF_ASSIGN_OR_RETURN(std::string pair_esupp,
                      m.Op("join", {V(pair_elem), V(esupp)}));
  MF_ASSIGN_OR_RETURN(std::string isupp,
                      m.Op("semijoin", {V("Item_supplier"), V(mi)}));
  MF_ASSIGN_OR_RETURN(std::string pair_isupp,
                      m.Op("join", {V(pair_item), V(isupp)}));
  MF_ASSIGN_OR_RETURN(std::string eqb,
                      m.Op("[=]", {V(pair_isupp), V(pair_esupp)}));
  MF_ASSIGN_OR_RETURN(std::string good,
                      m.Op("select", {V(eqb), L(Value::Bit(true))}));
  MF_ASSIGN_OR_RETURN(std::string pit,
                      m.Op("semijoin", {V(pair_item), V(good)}));
  MF_ASSIGN_OR_RETURN(std::string pel,
                      m.Op("semijoin", {V(pair_elem), V(good)}));
  MF_ASSIGN_OR_RETURN(std::string pcost,
                      m.Op("join", {V(pel), V("Supplier_supplies_cost")}));
  MF_ASSIGN_OR_RETURN(std::string pitm, m.Op("mirror", {V(pit)}));
  MF_ASSIGN_OR_RETURN(std::string itemcost,
                      m.Op("join", {V(pitm), V(pcost)}));
  MF_ASSIGN_OR_RETURN(std::string qty,
                      m.Op("semijoin", {V("Item_quantity"), V(mi)}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, mi));
  MF_ASSIGN_OR_RETURN(std::string supplycost,
                      m.Op("[*]", {V(itemcost), V(qty)}));
  MF_ASSIGN_OR_RETURN(std::string profit,
                      m.Op("[-]", {V(rev), V(supplycost)}));
  MF_ASSIGN_OR_RETURN(std::string isnat,
                      m.Op("join", {V(isupp), V("Supplier_nation")}));
  MF_ASSIGN_OR_RETURN(std::string iord,
                      m.Op("semijoin", {V("Item_order"), V(mi)}));
  MF_ASSIGN_OR_RETURN(std::string odate,
                      m.Op("join", {V(iord), V("Order_orderdate")}));
  MF_ASSIGN_OR_RETURN(std::string year, m.Op("[year]", {V(odate)}));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(isnat)}));
  MF_ASSIGN_OR_RETURN(std::string g2, m.Op("group", {V(g), V(year)}));
  MF_ASSIGN_OR_RETURN(std::string idx, m.Op("mirror", {V(g2)}));
  MF_ASSIGN_OR_RETURN(std::string profg, m.Op("join", {V(idx), V(profit)}));
  MF_ASSIGN_OR_RETURN(std::string sums, m.Op("{sum}", {V(profg)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(sums));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(sums));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(mi));
  return FinishMil(m, rows, check,
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------ Q11
// Important stock per nation: supplies value above a threshold per part.
Result<EngineRun> MonetQ11(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string nat,
      m.Op("select", {V("Nation_name"), L(Value::Str("GERMANY"))}));
  MF_ASSIGN_OR_RETURN(std::string supps,
                      m.Op("join", {V("Supplier_nation"), V(nat)}));
  MF_ASSIGN_OR_RETURN(std::string elems,
                      m.Op("semijoin", {V("Supplier_supplies"), V(supps)}));
  MF_ASSIGN_OR_RETURN(std::string byelem, m.Op("mirror", {V(elems)}));
  MF_ASSIGN_OR_RETURN(
      std::string cost,
      m.Op("semijoin", {V("Supplier_supplies_cost"), V(byelem)}));
  MF_ASSIGN_OR_RETURN(
      std::string avail,
      m.Op("semijoin", {V("Supplier_supplies_available"), V(byelem)}));
  MF_ASSIGN_OR_RETURN(std::string value,
                      m.Op("[*]", {V(cost), V(avail)}));
  MF_ASSIGN_OR_RETURN(
      std::string eparts,
      m.Op("semijoin", {V("Supplier_supplies_part"), V(byelem)}));
  MF_ASSIGN_OR_RETURN(std::string epm, m.Op("mirror", {V(eparts)}));
  MF_ASSIGN_OR_RETURN(std::string pv, m.Op("join", {V(epm), V(value)}));
  MF_ASSIGN_OR_RETURN(std::string sums, m.Op("{sum}", {V(pv)}));
  MF_ASSIGN_OR_RETURN(std::string total, m.Op("sum", {V(value)}));
  MF_ASSIGN_OR_RETURN(
      std::string thr,
      m.Op("calc.*", {V(total), L(Value::Dbl(0.001))}));
  MF_ASSIGN_OR_RETURN(std::string big,
                      m.Op("select.>", {V(sums), V(thr)}));
  MF_ASSIGN_OR_RETURN(size_t rows, m.CountOf(big));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(big));
  return FinishMil(m, rows, check);
}

// ------------------------------------------------------------------ Q12
// Shipping-mode / order-priority counts for late receipts of one year.
Result<EngineRun> MonetQ12(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string m1,
      m.Op("select", {V("Item_shipmode"), L(Value::Str("MAIL"))}));
  MF_ASSIGN_OR_RETURN(
      std::string m2,
      m.Op("select", {V("Item_shipmode"), L(Value::Str("SHIP"))}));
  MF_ASSIGN_OR_RETURN(std::string mm, m.Op("kunion", {V(m1), V(m2)}));
  MF_ASSIGN_OR_RETURN(std::string rc,
                      m.Op("semijoin", {V("Item_receiptdate"), V(mm)}));
  MF_ASSIGN_OR_RETURN(
      std::string r2,
      m.Op("select", {V(rc), L(D(1994, 1, 1)), L(D(1994, 12, 31))}));
  MF_ASSIGN_OR_RETURN(std::string commit,
                      m.Op("semijoin", {V("Item_commitdate"), V(r2)}));
  MF_ASSIGN_OR_RETURN(std::string receipt,
                      m.Op("semijoin", {V("Item_receiptdate"), V(r2)}));
  MF_ASSIGN_OR_RETURN(std::string ship,
                      m.Op("semijoin", {V("Item_shipdate"), V(r2)}));
  MF_ASSIGN_OR_RETURN(std::string c1, m.Op("[<]", {V(commit), V(receipt)}));
  MF_ASSIGN_OR_RETURN(std::string c2, m.Op("[<]", {V(ship), V(commit)}));
  MF_ASSIGN_OR_RETURN(std::string both, m.Op("[and]", {V(c1), V(c2)}));
  MF_ASSIGN_OR_RETURN(std::string sel,
                      m.Op("select", {V(both), L(Value::Bit(true))}));
  MF_ASSIGN_OR_RETURN(std::string iord,
                      m.Op("semijoin", {V("Item_order"), V(sel)}));
  MF_ASSIGN_OR_RETURN(std::string prio,
                      m.Op("join", {V(iord), V("Order_orderpriority")}));
  MF_ASSIGN_OR_RETURN(
      std::string h1,
      m.Op("select", {V(prio), L(Value::Str("1-URGENT"))}));
  MF_ASSIGN_OR_RETURN(std::string h2,
                      m.Op("select", {V(prio), L(Value::Str("2-HIGH"))}));
  MF_ASSIGN_OR_RETURN(std::string high, m.Op("kunion", {V(h1), V(h2)}));
  MF_ASSIGN_OR_RETURN(std::string mode,
                      m.Op("semijoin", {V("Item_shipmode"), V(sel)}));
  MF_ASSIGN_OR_RETURN(std::string g, m.Op("group", {V(mode)}));
  MF_ASSIGN_OR_RETURN(std::string himode,
                      m.Op("semijoin", {V(mode), V(high)}));
  MF_ASSIGN_OR_RETURN(std::string gh, m.Op("semijoin", {V(g), V(himode)}));
  MF_ASSIGN_OR_RETURN(std::string ghm, m.Op("mirror", {V(gh)}));
  MF_ASSIGN_OR_RETURN(std::string hc, m.Op("{count}", {V(ghm)}));
  MF_ASSIGN_OR_RETURN(std::string lomode,
                      m.Op("kdiff", {V(mode), V(high)}));
  MF_ASSIGN_OR_RETURN(std::string gl, m.Op("semijoin", {V(g), V(lomode)}));
  MF_ASSIGN_OR_RETURN(std::string glm, m.Op("mirror", {V(gl)}));
  MF_ASSIGN_OR_RETURN(std::string lc, m.Op("{count}", {V(glm)}));
  MF_ASSIGN_OR_RETURN(size_t rows_h, m.CountOf(hc));
  MF_ASSIGN_OR_RETURN(size_t rows_l, m.CountOf(lc));
  MF_ASSIGN_OR_RETURN(double check_h, m.SumTail(hc));
  MF_ASSIGN_OR_RETURN(double check_l, m.SumTail(lc));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(sel));
  return FinishMil(m, std::max(rows_h, rows_l), check_h + check_l,
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------ Q14
// Promotion-revenue share for one shipping month.
Result<EngineRun> MonetQ14(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string sh,
      m.Op("select",
           {V("Item_shipdate"), L(D(1995, 9, 1)), L(D(1995, 9, 30))}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, sh));
  MF_ASSIGN_OR_RETURN(std::string total, m.Op("sum", {V(rev)}));
  MF_ASSIGN_OR_RETURN(
      std::string pt,
      m.Op("select.like", {V("Part_type"), L(Value::Str("PROMO%"))}));
  MF_ASSIGN_OR_RETURN(std::string ipart,
                      m.Op("semijoin", {V("Item_part"), V(sh)}));
  MF_ASSIGN_OR_RETURN(std::string promo,
                      m.Op("join", {V(ipart), V(pt)}));
  MF_ASSIGN_OR_RETURN(std::string prev,
                      m.Op("semijoin", {V(rev), V(promo)}));
  MF_ASSIGN_OR_RETURN(std::string psum, m.Op("sum", {V(prev)}));
  MF_ASSIGN_OR_RETURN(std::string frac,
                      m.Op("calc./", {V(psum), V(total)}));
  MF_ASSIGN_OR_RETURN(std::string pct,
                      m.Op("calc.*", {V(frac), L(Value::Dbl(100.0))}));
  MF_ASSIGN_OR_RETURN(Value v, m.GetValue(pct));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(sh));
  return FinishMil(m, 1, v.AsDbl(),
                   static_cast<double>(nsel) / inst.num_items);
}

// ------------------------------------------------------------------ Q15
// The top supplier by revenue in one quarter.
Result<EngineRun> MonetQ15(const TpcdInstance& inst,
                           const kernel::ExecContext& ctx) {
  MilRun m(inst.db, &ctx);
  MF_ASSIGN_OR_RETURN(
      std::string sh,
      m.Op("select",
           {V("Item_shipdate"), L(D(1996, 1, 1)), L(D(1996, 3, 31))}));
  MF_ASSIGN_OR_RETURN(std::string rev, Revenue(m, sh));
  MF_ASSIGN_OR_RETURN(std::string isupp,
                      m.Op("semijoin", {V("Item_supplier"), V(sh)}));
  MF_ASSIGN_OR_RETURN(std::string ism, m.Op("mirror", {V(isupp)}));
  MF_ASSIGN_OR_RETURN(std::string srev, m.Op("join", {V(ism), V(rev)}));
  MF_ASSIGN_OR_RETURN(std::string sums, m.Op("{sum}", {V(srev)}));
  MF_ASSIGN_OR_RETURN(std::string best,
                      m.Op("topn_max", {V(sums), L(Value::Int(1))}));
  MF_ASSIGN_OR_RETURN(double check, m.SumTail(best));
  MF_ASSIGN_OR_RETURN(size_t nsel, m.CountOf(sh));
  return FinishMil(m, 1, check, static_cast<double>(nsel) / inst.num_items);
}

// ----------------------------------------------- MOA-pipeline queries

Result<EngineRun> MonetQ3(const kernel::ExecContext& ctx,
                          const TpcdInstance& inst,
                          const std::string& text) {
  MF_ASSIGN_OR_RETURN(moa::QueryResult qr, RunMoa(ctx, inst.db, text));
  // Top 10 orders by revenue: finish with the kernel's top-n on the
  // per-group revenue BAT.
  moa::ResultView view(&qr.env);
  MF_ASSIGN_OR_RETURN(const moa::StructExpr* revf,
                      view.Field(*qr.translation.result->elem, "revenue"));
  MF_ASSIGN_OR_RETURN(bat::Bat sums, qr.env.GetBat(revf->var));
  MF_ASSIGN_OR_RETURN(bat::Bat top, kernel::TopN(ctx, sums, 10, true));
  MF_ASSIGN_OR_RETURN(Value topsum,
                      kernel::ScalarAggregate(ctx, kernel::AggKind::kSum, top));
  EngineRun run;
  run.via = "moa";
  run.traces = qr.traces;
  run.rows = top.size();
  run.check = topsum.AsDbl();
  return run;
}

Result<EngineRun> MonetQ10(const kernel::ExecContext& ctx,
                           const TpcdInstance& inst,
                           const std::string& text) {
  MF_ASSIGN_OR_RETURN(moa::QueryResult qr, RunMoa(ctx, inst.db, text));
  moa::ResultView view(&qr.env);
  MF_ASSIGN_OR_RETURN(const moa::StructExpr* revf,
                      view.Field(*qr.translation.result->elem, "revenue"));
  MF_ASSIGN_OR_RETURN(bat::Bat sums, qr.env.GetBat(revf->var));
  MF_ASSIGN_OR_RETURN(bat::Bat top, kernel::TopN(ctx, sums, 20, true));
  MF_ASSIGN_OR_RETURN(Value topsum,
                      kernel::ScalarAggregate(ctx, kernel::AggKind::kSum, top));
  EngineRun run;
  run.via = "moa";
  run.traces = qr.traces;
  run.rows = top.size();
  run.check = topsum.AsDbl();
  return run;
}

}  // namespace

std::string QuerySuite::MoaText(int q) const {
  switch (q) {
    case 1:
      return "project[<returnflag : returnflag, linestatus : linestatus,"
             " sum(project[quantity](%3)) : sum_qty,"
             " sum(project[extendedprice](%3)) : sum_base_price,"
             " sum(project[disc_price](%3)) : sum_disc_price,"
             " sum(project[charge](%3)) : sum_charge,"
             " avg(project[quantity](%3)) : avg_qty,"
             " avg(project[discount](%3)) : avg_disc,"
             " count(%3) : count_order>]("
             "nest[returnflag, linestatus]("
             "project[<returnflag : returnflag, linestatus : linestatus,"
             " quantity : quantity, extendedprice : extendedprice,"
             " discount : discount,"
             " *(extendedprice, -(1.0, discount)) : disc_price,"
             " *(*(extendedprice, -(1.0, discount)), +(1.0, tax)) : charge>]("
             "select[<=(shipdate, \"1998-09-02\")](Item))))";
    case 3:
      return "project[<order : order, sum(project[revenue](%2)) : revenue>]("
             "nest[order]("
             "project[<order : order,"
             " *(extendedprice, -(1.0, discount)) : revenue>]("
             "select[=(order.cust.mktsegment, \"BUILDING\"),"
             " <(order.orderdate, \"1995-03-15\"),"
             " >(shipdate, \"1995-03-15\")](Item))))";
    case 6:
      return "sum(project[*(extendedprice, discount)]("
             "select[>=(shipdate, \"1994-01-01\"),"
             " <=(shipdate, \"1994-12-31\"), >=(discount, 0.05),"
             " <=(discount, 0.07), <(quantity, 24)](Item)))";
    case 10:
      return "project[<cust : cust, sum(project[revenue](%2)) : revenue>]("
             "nest[cust]("
             "project[<order.cust : cust,"
             " *(extendedprice, -(1.0, discount)) : revenue>]("
             "select[=(returnflag, 'R'),"
             " >=(order.orderdate, \"1993-10-01\"),"
             " <=(order.orderdate, \"1993-12-31\")](Item))))";
    case 13:
      return "project[<date : year, sum(project[revenue](%2)) : loss>]("
             "nest[date]("
             "project[<year(order.orderdate) : date,"
             " *(extendedprice, -(1.0, discount)) : revenue>]("
             "select[=(order.clerk, \"" +
             inst_->probe_clerk + "\"), =(returnflag, 'R')](Item))))";
    default:
      return "";
  }
}

Result<EngineRun> QuerySuite::RunMonet(int q,
                                       const kernel::ExecContext& ctx) {
  switch (q) {
    case 1:
      return RunMoaChecked(ctx, *inst_, MoaText(1), "sum_disc_price");
    case 2:
      return MonetQ2(*inst_, ctx);
    case 3:
      return MonetQ3(ctx, *inst_, MoaText(3));
    case 4:
      return MonetQ4(*inst_, ctx);
    case 5:
      return MonetQ5(*inst_, ctx);
    case 6:
      return RunMoaChecked(ctx, *inst_, MoaText(6), "");
    case 7:
      return MonetQ7(*inst_, ctx);
    case 8:
      return MonetQ8(*inst_, ctx);
    case 9:
      return MonetQ9(*inst_, ctx);
    case 10:
      return MonetQ10(ctx, *inst_, MoaText(10));
    case 11:
      return MonetQ11(*inst_, ctx);
    case 12:
      return MonetQ12(*inst_, ctx);
    case 13:
      return RunMoaChecked(ctx, *inst_, MoaText(13), "loss");
    case 14:
      return MonetQ14(*inst_, ctx);
    case 15:
      return MonetQ15(*inst_, ctx);
    default:
      return Status::OutOfRange("TPC-D query number must be 1..15");
  }
}

const char* QuerySuite::Comment(int q) {
  switch (q) {
    case 1: return "billing aggregates over the Item table";
    case 2: return "cheapest part supplier for a region";
    case 3: return "find top-10 valuable orders";
    case 4: return "priority assessment, customer satisfaction";
    case 5: return "revenue per local supplier";
    case 6: return "benefits if discounts abolished";
    case 7: return "value of shipped goods between 2 nations";
    case 8: return "part market share change for a region";
    case 9: return "line of parts profit for year and nation";
    case 10: return "top-20 customers with problematic parts";
    case 11: return "significant stock per nation";
    case 12: return "cheap shipping affecting critical orders";
    case 13: return "loss due to returned orders of a clerk";
    case 14: return "market change after a campaign date";
    case 15: return "identify the top supplier";
    default: return "";
  }
}

}  // namespace moaflat::tpcd
