#ifndef MOAFLAT_TPCD_TBL_IO_H_
#define MOAFLAT_TPCD_TBL_IO_H_

#include <string>

#include "common/result.h"
#include "tpcd/generator.h"

namespace moaflat::tpcd {

/// DBGEN ASCII interchange ("We used the DBGEN program to generate the 1GB
/// database in ASCII files. We then loaded these into Monet using its bulk
/// load utility", Section 6): pipe-separated `.tbl` files, one per table,
/// with the TPC-D column layouts. WriteTbl plays DBGEN; ReadTbl is the
/// bulk-load front half — together they let the loader be driven from
/// on-disk ASCII exactly like the paper's pipeline.

/// Writes region/nation/supplier/part/partsupp/customer/orders/lineitem
/// .tbl files into `dir` (created if missing).
Status WriteTbl(const TpcdData& data, const std::string& dir);

/// Parses a directory of .tbl files back into a population. Validates
/// foreign keys; returns a descriptive error on malformed input.
Result<TpcdData> ReadTbl(const std::string& dir);

}  // namespace moaflat::tpcd

#endif  // MOAFLAT_TPCD_TBL_IO_H_
