#ifndef MOAFLAT_STORAGE_CHECKPOINT_H_
#define MOAFLAT_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/result.h"
#include "mil/interpreter.h"
#include "storage/wal.h"

/// Durable snapshots of a MilEnv and the crash-recovery path that combines
/// the last checkpoint with WAL replay.
///
/// The serialized form is *canonical*: bindings in name order, columns and
/// string heaps deduplicated by identity in first-reference order, native
/// heaps dumped little-endian, and no process-local state (heap ids, sync
/// keys) included. Serializing an env, recovering it, and serializing it
/// again yields the identical byte string — which is what lets a 64-bit
/// fingerprint of the serialized form stand in for deep comparison in the
/// crash-recovery sweep, and what preserves column sharing (two catalog
/// BATs sharing a head column pre-crash still share it after recovery, so
/// their Section 5.1 synced-ness survives).
namespace moaflat::storage {

/// File names inside a durable store directory.
std::string WalPath(const std::string& dir);
std::string CheckpointPath(const std::string& dir);
std::string CheckpointTmpPath(const std::string& dir);

/// Canonical encoding of a binding set — the checkpoint payload and the
/// body of a kWalTxnCommit record share this format.
std::string SerializeBindings(
    const std::map<std::string, mil::MilEnv::Binding>& bindings);

/// Decodes a binding set and binds every entry into `env` (replay: later
/// records overwrite earlier bindings of the same name).
Status ApplyBindings(std::string_view bytes, mil::MilEnv* env);

std::string SerializeEnv(const mil::MilEnv& env);
Result<mil::MilEnv> DeserializeEnv(std::string_view bytes);

/// 64-bit FNV-1a of the canonical serialized form: equal fingerprints ⇔
/// bit-identical serialized envs (modulo hash collision).
uint64_t EnvFingerprint(const mil::MilEnv& env);

struct CheckpointOptions {
  /// Injector consulted at the kCheckpointRename site (null = none).
  FaultInjector* fault = nullptr;
};

/// Atomically publishes a checkpoint of `env` into `dir` using the
/// write-temp / fsync / rename / fsync-dir protocol: a crash at any point
/// leaves either the previous checkpoint or the new one, never a torn
/// file. `covered_lsn` is the WAL horizon the snapshot includes; recovery
/// replays only records with lsn >= covered_lsn, so a crash between the
/// rename and the log truncation cannot double-apply.
Status WriteCheckpoint(const std::string& dir, const mil::MilEnv& env,
                       uint64_t covered_lsn, const CheckpointOptions& opts = {});

struct LoadedCheckpoint {
  bool found = false;
  mil::MilEnv env;
  uint64_t covered_lsn = 0;
};

/// Loads the checkpoint in `dir`. Absent file: found=false (fresh store).
/// A present-but-corrupt checkpoint is an error, not an empty store — the
/// atomic publish protocol means it cannot be a torn write.
Result<LoadedCheckpoint> LoadCheckpoint(const std::string& dir);

struct RecoveredStore {
  mil::MilEnv env;
  /// The log, re-opened for appending (torn tail already truncated away).
  std::unique_ptr<Wal> wal;
  uint64_t covered_lsn = 0;          // checkpoint horizon
  uint64_t replayed = 0;             // records applied past the horizon
  bool torn_tail_discarded = false;  // checksum caught an interrupted write
  /// kWalRowAppend records past the horizon, for the row-store owner to
  /// replay (the env-level recovery cannot apply them itself).
  std::vector<WalRecord> row_records;
};

/// Full startup recovery of a durable store directory: removes any stray
/// checkpoint temp file, loads the last checkpoint, opens the WAL
/// (discarding a torn tail), and replays committed records past the
/// checkpoint horizon. The result is exactly the last committed state.
Result<RecoveredStore> RecoverStore(const std::string& dir,
                                    const WalOptions& wal_opts = {});

/// Checkpoints `env` (covering everything appended so far) and empties the
/// WAL. The caller must guarantee no concurrent appends.
Status CheckpointAndTruncate(const std::string& dir, const mil::MilEnv& env,
                             Wal* wal, const CheckpointOptions& opts = {});

}  // namespace moaflat::storage

#endif  // MOAFLAT_STORAGE_CHECKPOINT_H_
