#ifndef MOAFLAT_STORAGE_WAL_H_
#define MOAFLAT_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace moaflat::storage {

/// CRC32C (Castagnoli) of `n` bytes, chained via `acc` (pass a previous
/// return value to extend). Software slice-by-one table implementation —
/// the WAL's record checksum and the checkpoint's file checksum.
uint32_t Crc32c(const void* data, size_t n, uint32_t acc = 0);

/// What one WAL record carries.
enum WalRecordKind : uint8_t {
  /// A transactionally committed set of MilEnv bindings (physical logging:
  /// the engine's columns are immutable, so a mutation's redo image is the
  /// full new binding it materialized anyway).
  kWalTxnCommit = 1,
  /// One relational row append: table name + boxed row values.
  kWalRowAppend = 2,
};

struct WalRecord {
  uint64_t lsn = 0;
  uint8_t kind = 0;
  std::string body;
};

/// Result of scanning a WAL file: every fully-valid record in order, plus
/// whether (and where) a torn tail was found. A record is valid iff its
/// length prefix fits the remaining file and its CRC32C matches; the first
/// violation ends the committed prefix — everything after it is discarded
/// as an interrupted write, never partially applied.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  // file prefix covered by valid records
  bool torn_tail = false;    // trailing bytes after the prefix were invalid
};

/// Scans `path` without modifying it. A missing file is an empty scan, not
/// an error (a fresh store has no log yet).
Result<WalScan> ScanWal(const std::string& path);

struct WalOptions {
  /// Injector consulted at the kWalAppend/kWalFsync sites (null = none).
  /// In crash mode a firing append event kills the process after writing a
  /// partial frame — a genuine torn write as far as recovery can tell.
  FaultInjector* fault = nullptr;
};

/// The append-only write-ahead log. Records are framed
/// `[u32 len][u32 crc32c][payload]` where payload = `u64 lsn | u8 kind |
/// body`; LSNs increase monotonically across truncations (the checkpoint
/// records the LSN horizon it covers, so replay after a crash between
/// checkpoint publish and log truncation skips already-applied records).
///
/// Thread-safe. Append serializes writes under an internal mutex and
/// assigns LSNs in write order; Sync(lsn) is a group commit — one caller
/// becomes the fsync leader for every record appended so far, concurrent
/// committers wait and are covered by the same fsync (the fsyncs() counter
/// lets tests verify the batching). The first IO error latches: every later
/// Append/Sync fails with it, which is what flips the query service into
/// read-only mode exactly once and deterministically.
class Wal {
 public:
  struct OpenResult {
    std::unique_ptr<Wal> wal;
    WalScan scan;  // committed records found on open (for replay)
  };

  /// Opens (creating if absent) the log at `path` for appending: scans it,
  /// truncates any torn tail so the file ends on a record boundary, and
  /// continues LSNs after max(start_lsn, highest scanned LSN + 1).
  static Result<OpenResult> Open(const std::string& path, uint64_t start_lsn,
                                 WalOptions opts = {});

  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record (buffered in the OS; not yet durable) and returns
  /// its LSN. Durability requires a subsequent Sync covering the LSN.
  Result<uint64_t> Append(uint8_t kind, std::string_view body)
      MOAFLAT_EXCLUDES(mu_);

  /// Group commit: returns once every record up to `lsn` is fsynced. OK
  /// only after the data actually reached the log file.
  Status Sync(uint64_t lsn) MOAFLAT_EXCLUDES(mu_);

  /// Fsyncs everything appended so far.
  Status SyncAll() MOAFLAT_EXCLUDES(mu_);

  /// Empties the log (checkpoint took over its records). LSNs keep
  /// counting; the caller must have published a checkpoint covering
  /// next_lsn() first, or the dropped records are lost.
  Status TruncateAll() MOAFLAT_EXCLUDES(mu_);

  /// The LSN the next Append will get.
  uint64_t next_lsn() const MOAFLAT_EXCLUDES(mu_);
  /// Number of fsync calls issued (group-commit effectiveness probe).
  uint64_t fsyncs() const MOAFLAT_EXCLUDES(mu_);
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, uint64_t next_lsn, WalOptions opts);

  // Const after construction (and fsync(fd_) is thread-safe), so the
  // group-commit leader may touch fd_ with mu_ released.
  std::string path_;
  int fd_;
  WalOptions opts_;

  mutable Mutex mu_{LockRank::kWal, "wal"};
  CondVar cv_;
  uint64_t next_lsn_ MOAFLAT_GUARDED_BY(mu_);
  uint64_t appended_ MOAFLAT_GUARDED_BY(mu_) = 0;  // highest LSN written (+1)
  uint64_t synced_ MOAFLAT_GUARDED_BY(mu_) = 0;    // highest LSN fsynced (+1)
  bool sync_in_flight_ MOAFLAT_GUARDED_BY(mu_) = false;
  Status io_error_ MOAFLAT_GUARDED_BY(mu_);  // first IO failure; latched
  uint64_t fsync_count_ MOAFLAT_GUARDED_BY(mu_) = 0;
};

}  // namespace moaflat::storage

#endif  // MOAFLAT_STORAGE_WAL_H_
