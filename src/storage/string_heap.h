#ifndef MOAFLAT_STORAGE_STRING_HEAP_H_
#define MOAFLAT_STORAGE_STRING_HEAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/page_accountant.h"

namespace moaflat::storage {

/// Variable-size value heap per Fig. 2 of the paper: BUNs of string columns
/// hold integer byte-indices into a separate tail heap. Identical strings
/// are stored once (the dedup map is build-time only and not counted as
/// storage).
class StringHeap {
 public:
  StringHeap() : heap_id_(NewHeapId()) {}

  /// Rebuilds a heap from its raw byte image (checkpoint recovery): the
  /// layout — and therefore every previously handed-out offset — is
  /// preserved verbatim; the dedup map is reconstructed by scanning the
  /// NUL-terminated entries so later Intern calls keep deduplicating.
  static std::shared_ptr<StringHeap> FromBytes(std::vector<char> bytes);

  /// Appends `s` (or finds an existing copy) and returns its byte offset.
  int32_t Intern(std::string_view s);

  /// Reads the string stored at `offset`. The returned view is valid until
  /// the next Intern call.
  std::string_view View(int32_t offset) const {
    const char* base = bytes_.data() + offset;
    return std::string_view(base);  // entries are NUL-terminated
  }

  /// Reads the string at `offset`, reporting the page touch to the current
  /// IO scope (strings cost IO in the tail heap, not only the BUN heap).
  std::string_view ViewCounted(int32_t offset) const {
    if (IoStats* io = CurrentIo()) {
      std::string_view v = View(offset);
      io->TouchBytes(heap_id_, static_cast<uint64_t>(offset), v.size() + 1,
                     Access::kRandom);
      return v;
    }
    return View(offset);
  }

  uint64_t heap_id() const { return heap_id_; }
  size_t byte_size() const { return bytes_.size(); }

  /// The raw heap image (checkpoint serialization).
  const std::vector<char>& bytes() const { return bytes_; }

 private:
  uint64_t heap_id_;
  std::vector<char> bytes_;
  std::unordered_map<std::string, int32_t> dedup_;
};

}  // namespace moaflat::storage

#endif  // MOAFLAT_STORAGE_STRING_HEAP_H_
