#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "bat/bat.h"
#include "bat/column.h"
#include "storage/serde.h"
#include "storage/string_heap.h"

namespace moaflat::storage {
namespace {

constexpr char kCheckpointMagic[8] = {'M', 'F', 'C', 'K', 'P', 'T', '1', '\n'};

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(std::string(what) + " " + path + ": " +
                         std::strerror(errno));
}

uint8_t PropBits(const bat::Properties& p) {
  return static_cast<uint8_t>((p.hkey ? 1 : 0) | (p.tkey ? 2 : 0) |
                              (p.hsorted ? 4 : 0) | (p.tsorted ? 8 : 0));
}

bat::Properties PropsFromBits(uint8_t b) {
  bat::Properties p;
  p.hkey = (b & 1) != 0;
  p.tkey = (b & 2) != 0;
  p.hsorted = (b & 4) != 0;
  p.tsorted = (b & 8) != 0;
  return p;
}

/// Identity-deduplicated column and heap tables of one binding set, in
/// first-reference order (bindings iterate name-sorted, head before tail),
/// which makes the encoding canonical.
struct SharedTables {
  std::vector<const bat::Column*> cols;
  std::unordered_map<const bat::Column*, uint32_t> col_idx;
  std::vector<const StringHeap*> heaps;
  std::unordered_map<const StringHeap*, uint32_t> heap_idx;

  uint32_t AddColumn(const bat::ColumnPtr& c) {
    auto it = col_idx.find(c.get());
    if (it != col_idx.end()) return it->second;
    if (c->type() == MonetType::kStr) AddHeap(c->str_heap().get());
    const uint32_t idx = static_cast<uint32_t>(cols.size());
    cols.push_back(c.get());
    col_idx.emplace(c.get(), idx);
    return idx;
  }

  uint32_t AddHeap(const StringHeap* h) {
    auto it = heap_idx.find(h);
    if (it != heap_idx.end()) return it->second;
    const uint32_t idx = static_cast<uint32_t>(heaps.size());
    heaps.push_back(h);
    heap_idx.emplace(h, idx);
    return idx;
  }
};

void EncodeColumn(const SharedTables& tables, const bat::Column& col,
                  std::string* out) {
  serde::PutU8(out, static_cast<uint8_t>(col.type()));
  serde::PutU64(out, col.size());
  switch (col.type()) {
    case MonetType::kVoid:
      serde::PutU64(out, col.void_base());
      return;
    case MonetType::kStr:
      serde::PutU32(out, tables.heap_idx.at(col.str_heap().get()));
      serde::PutVector(out, col.Data<int32_t>());
      return;
    default:
      bat::Column::VisitType(col.type(), [&](auto tag) {
        using T = typename decltype(tag)::type;
        serde::PutVector(out, col.Data<T>());
      });
      return;
  }
}

Result<bat::ColumnPtr> DecodeColumn(
    serde::Cursor* cur,
    const std::vector<std::shared_ptr<StringHeap>>& heaps) {
  MF_ASSIGN_OR_RETURN(const uint8_t type_tag, cur->GetU8());
  const MonetType type = static_cast<MonetType>(type_tag);
  MF_ASSIGN_OR_RETURN(const uint64_t size, cur->GetU64());
  switch (type) {
    case MonetType::kVoid: {
      MF_ASSIGN_OR_RETURN(const uint64_t base, cur->GetU64());
      return bat::Column::MakeVoid(base, static_cast<size_t>(size));
    }
    case MonetType::kStr: {
      MF_ASSIGN_OR_RETURN(const uint32_t heap, cur->GetU32());
      if (heap >= heaps.size()) {
        return Status::IoError("checkpoint: string heap index out of range");
      }
      MF_ASSIGN_OR_RETURN(auto offsets, cur->GetVector<int32_t>());
      if (offsets.size() != size) {
        return Status::IoError("checkpoint: string column size mismatch");
      }
      const size_t heap_bytes = heaps[heap]->byte_size();
      for (const int32_t off : offsets) {
        if (off < 0 || static_cast<size_t>(off) >= heap_bytes) {
          return Status::IoError("checkpoint: string offset out of range");
        }
      }
      return bat::Column::MakeStrOffsets(heaps[heap], std::move(offsets));
    }
    case MonetType::kOidT: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<Oid>());
      if (v.size() != size) break;
      return bat::Column::MakeOid(std::move(v));
    }
    case MonetType::kBit: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<uint8_t>());
      if (v.size() != size) break;
      return bat::Column::MakeBit(std::move(v));
    }
    case MonetType::kChr: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<char>());
      if (v.size() != size) break;
      return bat::Column::MakeChr(std::move(v));
    }
    case MonetType::kSht: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<int16_t>());
      if (v.size() != size) break;
      return bat::Column::MakeSht(std::move(v));
    }
    case MonetType::kInt: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<int32_t>());
      if (v.size() != size) break;
      return bat::Column::MakeInt(std::move(v));
    }
    case MonetType::kLng: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<int64_t>());
      if (v.size() != size) break;
      return bat::Column::MakeLng(std::move(v));
    }
    case MonetType::kFlt: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<float>());
      if (v.size() != size) break;
      return bat::Column::MakeFlt(std::move(v));
    }
    case MonetType::kDbl: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<double>());
      if (v.size() != size) break;
      return bat::Column::MakeDbl(std::move(v));
    }
    case MonetType::kDate: {
      MF_ASSIGN_OR_RETURN(auto v, cur->GetVector<Date>());
      if (v.size() != size) break;
      return bat::Column::MakeDate(std::move(v));
    }
  }
  return Status::IoError("checkpoint: column size mismatch");
}

/// Reads an entire file; found=false (empty payload) when absent.
Result<std::string> ReadFile(const std::string& path, bool* found) {
  *found = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::string();
    return Errno("open", path);
  }
  *found = true;
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    bytes.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return bytes;
}

Status FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Errno("open dir", dir);
  if (::fsync(dfd) != 0) {
    const Status st = Errno("fsync dir", dir);
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

}  // namespace

std::string WalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.mf";
}
std::string CheckpointTmpPath(const std::string& dir) {
  return dir + "/checkpoint.tmp";
}

std::string SerializeBindings(
    const std::map<std::string, mil::MilEnv::Binding>& bindings) {
  SharedTables tables;
  for (const auto& [name, binding] : bindings) {
    if (const auto* b = std::get_if<bat::Bat>(&binding)) {
      tables.AddColumn(b->head_col());
      tables.AddColumn(b->tail_col());
    }
  }
  std::string out;
  serde::PutU32(&out, static_cast<uint32_t>(tables.heaps.size()));
  for (const StringHeap* h : tables.heaps) {
    serde::PutBytes(&out, std::string_view(h->bytes().data(),
                                           h->bytes().size()));
  }
  serde::PutU32(&out, static_cast<uint32_t>(tables.cols.size()));
  for (const bat::Column* c : tables.cols) EncodeColumn(tables, *c, &out);
  serde::PutU32(&out, static_cast<uint32_t>(bindings.size()));
  for (const auto& [name, binding] : bindings) {
    serde::PutBytes(&out, name);
    if (const auto* b = std::get_if<bat::Bat>(&binding)) {
      serde::PutU8(&out, 0);
      serde::PutU8(&out, PropBits(b->props()));
      serde::PutU32(&out, tables.col_idx.at(b->head_col().get()));
      serde::PutU32(&out, tables.col_idx.at(b->tail_col().get()));
    } else {
      serde::PutU8(&out, 1);
      serde::PutValue(&out, std::get<Value>(binding));
    }
  }
  return out;
}

Status ApplyBindings(std::string_view bytes, mil::MilEnv* env) {
  serde::Cursor cur(bytes);
  MF_ASSIGN_OR_RETURN(const uint32_t nheaps, cur.GetU32());
  std::vector<std::shared_ptr<StringHeap>> heaps;
  heaps.reserve(nheaps);
  for (uint32_t i = 0; i < nheaps; ++i) {
    MF_ASSIGN_OR_RETURN(const std::string_view raw, cur.GetBytes());
    heaps.push_back(
        StringHeap::FromBytes(std::vector<char>(raw.begin(), raw.end())));
  }
  MF_ASSIGN_OR_RETURN(const uint32_t ncols, cur.GetU32());
  std::vector<bat::ColumnPtr> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    MF_ASSIGN_OR_RETURN(bat::ColumnPtr c, DecodeColumn(&cur, heaps));
    cols.push_back(std::move(c));
  }
  MF_ASSIGN_OR_RETURN(const uint32_t nbindings, cur.GetU32());
  for (uint32_t i = 0; i < nbindings; ++i) {
    MF_ASSIGN_OR_RETURN(const std::string_view name, cur.GetBytes());
    MF_ASSIGN_OR_RETURN(const uint8_t tag, cur.GetU8());
    if (tag == 0) {
      MF_ASSIGN_OR_RETURN(const uint8_t props, cur.GetU8());
      MF_ASSIGN_OR_RETURN(const uint32_t head, cur.GetU32());
      MF_ASSIGN_OR_RETURN(const uint32_t tail, cur.GetU32());
      if (head >= cols.size() || tail >= cols.size()) {
        return Status::IoError("checkpoint: column index out of range");
      }
      MF_ASSIGN_OR_RETURN(bat::Bat b, bat::Bat::Make(cols[head], cols[tail]));
      // WithProps re-verifies every claimed property against the recovered
      // data — a checksum-colliding corruption cannot smuggle in a forged
      // sortedness/key proof.
      MF_ASSIGN_OR_RETURN(b, b.WithProps(PropsFromBits(props)));
      env->BindBat(std::string(name), std::move(b));
    } else if (tag == 1) {
      MF_ASSIGN_OR_RETURN(Value v, cur.GetValue());
      env->BindValue(std::string(name), std::move(v));
    } else {
      return Status::IoError("checkpoint: unknown binding tag");
    }
  }
  if (!cur.done()) {
    return Status::IoError("checkpoint: trailing bytes after binding set");
  }
  return Status::OK();
}

std::string SerializeEnv(const mil::MilEnv& env) {
  return SerializeBindings(env.bindings());
}

Result<mil::MilEnv> DeserializeEnv(std::string_view bytes) {
  mil::MilEnv env;
  MF_RETURN_NOT_OK(ApplyBindings(bytes, &env));
  return env;
}

uint64_t EnvFingerprint(const mil::MilEnv& env) {
  const std::string bytes = SerializeEnv(env);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status WriteCheckpoint(const std::string& dir, const mil::MilEnv& env,
                       uint64_t covered_lsn, const CheckpointOptions& opts) {
  std::string payload;
  serde::PutU64(&payload, covered_lsn);
  payload += SerializeEnv(env);

  const std::string tmp = CheckpointTmpPath(dir);
  const std::string final_path = CheckpointPath(dir);

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  std::string file;
  file.reserve(sizeof(kCheckpointMagic) + 8 + payload.size() + 4);
  file.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  serde::PutU64(&file, payload.size());
  file += payload;
  serde::PutU32(&file, Crc32c(payload.data(), payload.size()));
  const char* data = file.data();
  size_t n = file.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("write", tmp);
      ::close(fd);
      return st;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  // fsync the temp file *before* the rename: once the new name is visible
  // its content must already be durable (lint: unsynced-rename).
  if (::fsync(fd) != 0) {
    const Status st = Errno("fsync", tmp);
    ::close(fd);
    return st;
  }
  ::close(fd);

  if (opts.fault != nullptr) {
    // Crash point 1: temp written and fsynced, not yet published. Recovery
    // must ignore (and clean up) the stray temp file.
    MF_RETURN_NOT_OK(opts.fault->MaybeFailIo(
        FaultInjector::Site::kCheckpointRename, "checkpoint rename"));
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Errno("rename", tmp);
  }
  if (opts.fault != nullptr && opts.fault->crash_enabled() &&
      opts.fault->Fire(FaultInjector::Site::kCheckpointRename)) {
    // Crash point 2: renamed but the directory entry is not yet fsynced.
    FaultInjector::CrashNow();
  }
  // fsync the directory *after* the rename so the publish itself is
  // durable, not just the bytes behind it.
  return FsyncDir(dir);
}

Result<LoadedCheckpoint> LoadCheckpoint(const std::string& dir) {
  LoadedCheckpoint out;
  bool found = false;
  MF_ASSIGN_OR_RETURN(const std::string bytes,
                      ReadFile(CheckpointPath(dir), &found));
  if (!found) return out;
  if (bytes.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return Status::IoError("checkpoint: bad magic in " + CheckpointPath(dir));
  }
  serde::Cursor body(std::string_view(bytes).substr(sizeof(kCheckpointMagic)));
  MF_ASSIGN_OR_RETURN(const uint64_t len, body.GetU64());
  if (body.remaining() < len + 4) {
    return Status::IoError("checkpoint: truncated " + CheckpointPath(dir));
  }
  const std::string_view payload =
      std::string_view(bytes).substr(sizeof(kCheckpointMagic) + 8,
                                     static_cast<size_t>(len));
  serde::Cursor crc_cur(
      std::string_view(bytes).substr(sizeof(kCheckpointMagic) + 8 + len));
  MF_ASSIGN_OR_RETURN(const uint32_t crc, crc_cur.GetU32());
  if (Crc32c(payload.data(), payload.size()) != crc) {
    return Status::IoError("checkpoint: checksum mismatch in " +
                           CheckpointPath(dir));
  }
  serde::Cursor pay(payload);
  MF_ASSIGN_OR_RETURN(out.covered_lsn, pay.GetU64());
  MF_ASSIGN_OR_RETURN(out.env, DeserializeEnv(payload.substr(8)));
  out.found = true;
  return out;
}

Result<RecoveredStore> RecoverStore(const std::string& dir,
                                    const WalOptions& wal_opts) {
  // A stray temp file is a checkpoint that crashed before publish; the
  // previous checkpoint (or none) is still authoritative.
  (void)::unlink(CheckpointTmpPath(dir).c_str());

  RecoveredStore out;
  MF_ASSIGN_OR_RETURN(LoadedCheckpoint ckpt, LoadCheckpoint(dir));
  if (ckpt.found) {
    out.env = std::move(ckpt.env);
    out.covered_lsn = ckpt.covered_lsn;
  }
  MF_ASSIGN_OR_RETURN(Wal::OpenResult opened,
                      Wal::Open(WalPath(dir), out.covered_lsn, wal_opts));
  out.wal = std::move(opened.wal);
  out.torn_tail_discarded = opened.scan.torn_tail;
  for (WalRecord& rec : opened.scan.records) {
    if (rec.lsn < out.covered_lsn) continue;  // checkpoint already has it
    switch (rec.kind) {
      case kWalTxnCommit:
        MF_RETURN_NOT_OK(ApplyBindings(rec.body, &out.env));
        ++out.replayed;
        break;
      case kWalRowAppend:
        out.row_records.push_back(std::move(rec));
        ++out.replayed;
        break;
      default:
        return Status::IoError("wal: unknown record kind " +
                               std::to_string(rec.kind));
    }
  }
  return out;
}

Status CheckpointAndTruncate(const std::string& dir, const mil::MilEnv& env,
                             Wal* wal, const CheckpointOptions& opts) {
  MF_RETURN_NOT_OK(WriteCheckpoint(dir, env, wal->next_lsn(), opts));
  return wal->TruncateAll();
}

}  // namespace moaflat::storage
