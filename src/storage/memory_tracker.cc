#include "storage/memory_tracker.h"

namespace moaflat::storage {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

}  // namespace moaflat::storage
