#ifndef MOAFLAT_STORAGE_MEMORY_TRACKER_H_
#define MOAFLAT_STORAGE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace moaflat::storage {

/// Tracks bytes of live BAT/heap storage to reproduce the "total
/// intermediate MB" and "max memory MB" columns of Fig. 9. Columns register
/// their payload on construction and deregister on destruction, so the peak
/// reflects the largest set of simultaneously live (base + intermediate)
/// tables, mirroring Monet's materialize-everything execution model.
class MemoryTracker {
 public:
  void Add(size_t bytes) {
    const uint64_t now = current_.fetch_add(bytes) + bytes;
    allocated_total_.fetch_add(bytes);
    uint64_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
  }

  void Sub(size_t bytes) { current_.fetch_sub(bytes); }

  uint64_t current() const { return current_.load(); }
  uint64_t peak() const { return peak_.load(); }
  /// Total bytes ever allocated (base data + all intermediates).
  uint64_t allocated_total() const { return allocated_total_.load(); }

  /// Re-bases the peak and the allocation counter at the current level;
  /// called before each query so per-query numbers can be reported.
  void MarkEpoch() {
    peak_.store(current_.load());
    allocated_total_.store(0);
  }

  /// The process-wide tracker.
  static MemoryTracker& Global();

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> allocated_total_{0};
};

}  // namespace moaflat::storage

#endif  // MOAFLAT_STORAGE_MEMORY_TRACKER_H_
