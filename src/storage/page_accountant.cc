#include "storage/page_accountant.h"

#include <atomic>

namespace moaflat::storage {
namespace {

std::atomic<uint64_t> g_next_heap_id{1};
thread_local IoStats* t_current_io = nullptr;

}  // namespace

uint64_t NewHeapId() {
  return g_next_heap_id.fetch_add(1, std::memory_order_relaxed);
}

void IoStats::TouchBytes(uint64_t heap, uint64_t offset, uint64_t len,
                         Access acc) {
  if (len == 0) return;
  ++touches_;
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + len - 1) / kPageSize;
  if (capacity_ > 0) {
    for (uint64_t p = first; p <= last; ++p) AdmitLru(PageKey(heap, p), acc);
    return;
  }
  for (uint64_t p = first; p <= last; ++p) TouchPageCold(heap, p, acc);
}

void IoStats::TouchGather(uint64_t heap, const uint32_t* idx, size_t n,
                          int width) {
  if (width <= 0 || n == 0) return;
  if (capacity_ > 0) {
    for (size_t k = 0; k < n; ++k) {
      TouchElement(heap, idx[k], width, Access::kRandom);
    }
    return;
  }
  touches_ += n;
  const uint64_t w = static_cast<uint64_t>(width);
  if (kPageSize % w == 0) {
    // Fixed widths divide the page size, so an element never straddles a
    // page boundary: one page per index.
    const uint64_t per_page = kPageSize / w;
    for (size_t k = 0; k < n; ++k) {
      TouchPageCold(heap, idx[k] / per_page, Access::kRandom);
    }
    return;
  }
  for (size_t k = 0; k < n; ++k) {
    const uint64_t off = idx[k] * w;
    const uint64_t first = off / kPageSize;
    const uint64_t last = (off + w - 1) / kPageSize;
    for (uint64_t p = first; p <= last; ++p) {
      TouchPageCold(heap, p, Access::kRandom);
    }
  }
}

void IoStats::TouchPageColdSlow(uint64_t heap, uint64_t page, Access acc) {
  PageBitmap& bm = touched_[heap];
  cache_heap_[cache_next_] = heap;
  cache_bitmap_[cache_next_] = &bm;
  cache_next_ = (cache_next_ + 1) % kHeapCacheSlots;
  if (bm.TestAndSet(page & kPageMask)) {
    memo_key_ = PageKey(heap, page);
    return;
  }
  RecordFault(PageKey(heap, page), acc);
}

void IoStats::AdmitCold(uint64_t heap, uint64_t page, Access acc) {
  // Replay path: bypass the memos (they are maintained by RecordFault /
  // TouchPageColdSlow anyway) but share the bitmap residency state.
  TouchPageCold(heap, page, acc);
}

void IoStats::AdmitLru(uint64_t key, Access acc) {
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    // Hit: refresh recency.
    if (it->second != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return;
  }
  ++faults_;
  if (acc == Access::kSequential) {
    ++seq_faults_;
  } else {
    ++rand_faults_;
  }
  if (log_faults_) fault_log_.emplace_back(key, acc);
  lru_.push_front(key);
  resident_[key] = lru_.begin();
  if (resident_.size() > capacity_) {
    resident_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void IoStats::MergeFrom(const IoStats& shard) {
  touches_ += shard.touches_;
  if (shard.has_error_.load(std::memory_order_acquire) &&
      !has_error_.load(std::memory_order_relaxed)) {
    error_ = shard.error_;
    has_error_.store(true, std::memory_order_release);
  }
  if (capacity_ > 0) {
    for (const auto& [key, acc] : shard.fault_log_) AdmitLru(key, acc);
    return;
  }
  for (const auto& [key, acc] : shard.fault_log_) {
    AdmitCold(key >> 22, key & kPageMask, acc);
  }
}

void IoStats::Reset() {
  touched_.clear();
  InvalidateMemos();
  resident_.clear();
  lru_.clear();
  fault_log_.clear();
  faults_ = seq_faults_ = rand_faults_ = touches_ = evictions_ = 0;
  has_error_.store(false, std::memory_order_relaxed);
  error_ = Status::OK();
}

void IoStats::CopyFrom(const IoStats& other) {
  capacity_ = other.capacity_;
  log_faults_ = other.log_faults_;
  fault_log_ = other.fault_log_;
  touched_ = other.touched_;
  lru_ = other.lru_;
  // Rebuild the iterator map against the copied list.
  resident_.clear();
  for (auto it = lru_.begin(); it != lru_.end(); ++it) resident_[*it] = it;
  faults_ = other.faults_;
  seq_faults_ = other.seq_faults_;
  rand_faults_ = other.rand_faults_;
  touches_ = other.touches_;
  evictions_ = other.evictions_;
  has_error_.store(other.has_error_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  error_ = other.error_;
  InvalidateMemos();
}

void IoStats::MoveFrom(IoStats&& other) {
  capacity_ = other.capacity_;
  log_faults_ = other.log_faults_;
  fault_log_ = std::move(other.fault_log_);
  touched_ = std::move(other.touched_);
  lru_ = std::move(other.lru_);
  resident_ = std::move(other.resident_);
  faults_ = other.faults_;
  seq_faults_ = other.seq_faults_;
  rand_faults_ = other.rand_faults_;
  touches_ = other.touches_;
  evictions_ = other.evictions_;
  has_error_.store(other.has_error_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  error_ = std::move(other.error_);
  InvalidateMemos();
  other.Reset();
}

IoStats* CurrentIo() { return t_current_io; }

IoScope::IoScope(IoStats* stats) : previous_(t_current_io) {
  t_current_io = stats;
}

IoScope::~IoScope() { t_current_io = previous_; }

}  // namespace moaflat::storage
