#include "storage/page_accountant.h"

#include <atomic>

namespace moaflat::storage {
namespace {

std::atomic<uint64_t> g_next_heap_id{1};
thread_local IoStats* t_current_io = nullptr;

}  // namespace

uint64_t NewHeapId() {
  return g_next_heap_id.fetch_add(1, std::memory_order_relaxed);
}

void IoStats::TouchBytes(uint64_t heap, uint64_t offset, uint64_t len,
                         Access acc) {
  if (len == 0) return;
  ++touches_;
  const uint64_t first = offset / kPageSize;
  const uint64_t last = (offset + len - 1) / kPageSize;
  for (uint64_t p = first; p <= last; ++p) {
    // 22 bits of page number per heap is plenty (16 GB heaps); heap ids are
    // process-unique so collisions cannot occur in practice.
    const uint64_t key = (heap << 22) | (p & ((1ULL << 22) - 1));
    Admit(key, acc);
  }
}

void IoStats::Admit(uint64_t key, Access acc) {
  auto it = resident_.find(key);
  if (it != resident_.end()) {
    // Hit. Under a capacity limit, refresh recency.
    if (capacity_ > 0 && it->second != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, it->second);
    }
    return;
  }
  ++faults_;
  if (acc == Access::kSequential) {
    ++seq_faults_;
  } else {
    ++rand_faults_;
  }
  if (log_faults_) fault_log_.emplace_back(key, acc);
  lru_.push_front(key);
  resident_[key] = lru_.begin();
  if (capacity_ > 0 && resident_.size() > capacity_) {
    resident_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void IoStats::MergeFrom(const IoStats& shard) {
  touches_ += shard.touches_;
  for (const auto& [key, acc] : shard.fault_log_) Admit(key, acc);
}

void IoStats::Reset() {
  resident_.clear();
  lru_.clear();
  fault_log_.clear();
  faults_ = seq_faults_ = rand_faults_ = touches_ = evictions_ = 0;
}

IoStats* CurrentIo() { return t_current_io; }

IoScope::IoScope(IoStats* stats) : previous_(t_current_io) {
  t_current_io = stats;
}

IoScope::~IoScope() { t_current_io = previous_; }

}  // namespace moaflat::storage
