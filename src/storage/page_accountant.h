#ifndef MOAFLAT_STORAGE_PAGE_ACCOUNTANT_H_
#define MOAFLAT_STORAGE_PAGE_ACCOUNTANT_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"

namespace moaflat::storage {

/// Disk/VM page size used by the IO accounting layer. Matches the paper's
/// cost-model parameter B = 4096 (Section 5.2.2).
inline constexpr size_t kPageSize = 4096;

/// Allocates a process-unique heap id. Every BUN heap / string heap /
/// relational page file registers itself so page touches can be attributed.
uint64_t NewHeapId();

/// Access pattern of a heap touch; only used for reporting (the fault count
/// itself is pattern-independent: a page faults the first time it is
/// touched in a cold run, exactly as in the paper's cold-memory-mapped-file
/// model).
enum class Access { kSequential, kRandom };

/// Counts simulated page faults.
///
/// The paper measures real virtual-memory page faults of cold memory-mapped
/// BATs on a 128 MB SPARCstation. We reproduce the measurement by modelling
/// each heap as a cold memory-mapped file of 4 KB pages: the first touch of
/// any page in the lifetime of an IoStats scope is a fault, later touches
/// are hits. This is precisely the assumption under which the Section
/// 5.2.2 formulas E_rel / E_dv are derived.
///
/// An optional *capacity* (in pages) models the paper's 128 MB machine:
/// with a capacity set, pages are kept in an LRU pool and evicted pages
/// fault again on the next touch — the "excessive swapping" regime the
/// paper observes on Q1 when the hot-set outgrows main memory (Section
/// 6.2). Unlimited capacity (the default) is the pure cold-run model.
///
/// Cost: every kernel inner loop reports its touches here, so the
/// unlimited-capacity mode (what all cold-run kernels execute under) is a
/// per-heap touched-page *bitmap* behind two one-entry memos — the common
/// repeat-page / repeat-heap touch costs one integer compare plus one bit
/// test, never a hash probe. Only the LRU mode keeps the recency map, and
/// only it pays for one.
class IoStats {
 public:
  IoStats() = default;

  /// Creates a memory-limited pager holding at most `capacity_pages`.
  explicit IoStats(size_t capacity_pages) : capacity_(capacity_pages) {}

  // The cold-mode memos point into touched_; remap them on copy/move.
  IoStats(const IoStats& other) { CopyFrom(other); }
  IoStats& operator=(const IoStats& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  IoStats(IoStats&& other) noexcept { MoveFrom(std::move(other)); }
  IoStats& operator=(IoStats&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Accountant for one block of a parallel kernel phase: unlimited
  /// capacity (blocks start cold, so the fault set *is* the touched page
  /// set) and an ordered fault log that MergeFrom replays. Install it via
  /// IoScope inside the block, then merge the shards in block order.
  static IoStats ForShard() {
    IoStats s;
    s.log_faults_ = true;
    return s;
  }

  /// Replays a shard's faults (its first-touch-per-page log, in touch
  /// order) into this accountant: pages already resident here stay hits,
  /// new pages fault with the access kind of the shard's first touch.
  /// Merging contiguous shards in block order therefore reproduces the
  /// serial run's fault count, its sequential/random split and its
  /// logical-touch total *exactly* under cold-run (unlimited-capacity)
  /// accounting — the basis of the parallel kernels' exact IO accounting.
  /// With an LRU capacity configured on *this*, replay order approximates
  /// recency (shard-internal hits do not refresh the LRU).
  /// `shard` must come from ForShard(); shards without a fault log only
  /// contribute their logical-touch count.
  void MergeFrom(const IoStats& shard);

  /// Records a touch of `len` bytes starting at `offset` within heap `heap`.
  void TouchBytes(uint64_t heap, uint64_t offset, uint64_t len, Access acc);

  /// Records a touch of element `index` in a heap of `width`-byte values.
  void TouchElement(uint64_t heap, uint64_t index, int width, Access acc) {
    if (width <= 0) return;  // void columns occupy no storage
    TouchBytes(heap, index * static_cast<uint64_t>(width),
               static_cast<uint64_t>(width), acc);
  }

  /// Records a sequential touch of elements [lo, hi) in a heap.
  void TouchRange(uint64_t heap, uint64_t lo, uint64_t hi, int width) {
    if (width <= 0 || hi <= lo) return;
    TouchBytes(heap, lo * static_cast<uint64_t>(width),
               (hi - lo) * static_cast<uint64_t>(width), Access::kSequential);
  }

  /// Batch API for gather loops: equivalent to one random TouchElement per
  /// index, in order, with the heap resolved once for the whole batch.
  void TouchGather(uint64_t heap, const uint32_t* idx, size_t n, int width);

  uint64_t faults() const { return faults_; }
  uint64_t sequential_faults() const { return seq_faults_; }
  uint64_t random_faults() const { return rand_faults_; }
  uint64_t logical_touches() const { return touches_; }

  /// Returns-and-clears the latched (simulated) IO read error, if any.
  /// A page fault under an armed FaultInjector may latch one; the next
  /// ExecContext::CheckInterrupt() poll surfaces it as the statement's
  /// failure. Clearing on take keeps the accountant reusable by the
  /// session's next query. Thread-safe against concurrent takers (worker
  /// blocks poll via ChargeGate::Flush); the *latch* side runs only on the
  /// accountant's owner thread (serial touches and block-ordered merges),
  /// never concurrently with a parallel phase's polls.
  Status TakeError() {
    if (!has_error_.load(std::memory_order_acquire)) return Status::OK();
    if (!has_error_.exchange(false, std::memory_order_acq_rel)) {
      return Status::OK();
    }
    Status e = std::move(error_);
    error_ = Status::OK();
    return e;
  }

  /// Forgets all residency state (the next touch of every page faults
  /// again), e.g. between benchmark repetitions.
  void Reset();

  size_t resident_pages() const {
    // Without a capacity nothing is ever evicted, so the resident set is
    // exactly the faulted set.
    return capacity_ > 0 ? resident_.size() : static_cast<size_t>(faults_);
  }
  uint64_t evictions() const { return evictions_; }

 private:
  /// Touched-page bitmap of one heap (cold-run mode).
  struct PageBitmap {
    std::vector<uint64_t> words;

    /// Tests-and-sets the page bit; true if the page was already touched.
    bool TestAndSet(uint64_t page) {
      const size_t word = static_cast<size_t>(page >> 6);
      if (word >= words.size()) words.resize(word + 1, 0);
      const uint64_t bit = 1ULL << (page & 63);
      const bool hit = (words[word] & bit) != 0;
      words[word] |= bit;
      return hit;
    }
  };

  static constexpr uint64_t kPageMask = (1ULL << 22) - 1;
  // 22 bits of page number per heap is plenty (16 GB heaps); heap ids are
  // process-unique so collisions cannot occur in practice.
  static uint64_t PageKey(uint64_t heap, uint64_t page) {
    return (heap << 22) | (page & kPageMask);
  }

  /// LRU-mode admission (the only path that pays for the recency map).
  void AdmitLru(uint64_t key, Access acc);
  /// Cold-mode admission of one page, bypassing the memos.
  void AdmitCold(uint64_t heap, uint64_t page, Access acc);
  /// Cold-mode slow path of TouchPage: resolve the heap bitmap.
  void TouchPageColdSlow(uint64_t heap, uint64_t page, Access acc);

  /// Cold-mode touch of one page: one compare against the last-page memo,
  /// else one bit test in the heap's bitmap, resolved through a small
  /// direct-scanned cache (kernels touch at most a handful of heaps per
  /// phase, but they *rotate* — a join alternates probe/head/tail heaps
  /// per match — so a single-heap memo would miss every touch).
  void TouchPageCold(uint64_t heap, uint64_t page, Access acc) {
    const uint64_t key = PageKey(heap, page);
    if (key == memo_key_) return;  // repeat touch of the resident memo page
    for (size_t s = 0; s < kHeapCacheSlots; ++s) {
      if (cache_heap_[s] == heap) {
        if (cache_bitmap_[s]->TestAndSet(page & kPageMask)) {
          memo_key_ = key;
          return;
        }
        RecordFault(key, acc);
        return;
      }
    }
    TouchPageColdSlow(heap, page, acc);
  }

  void RecordFault(uint64_t key, Access acc) {
    ++faults_;
    if (acc == Access::kSequential) {
      ++seq_faults_;
    } else {
      ++rand_faults_;
    }
    if (log_faults_) fault_log_.emplace_back(key, acc);
    memo_key_ = key;
    // Simulated IO errors fire per *fault* (not per touch), on the thread
    // that owns this accountant — serial kernels directly, parallel ones
    // at the block-ordered shard merge, keeping the decision sequence
    // deterministic for a given seed.
    if (FaultInjector* fi = CurrentFaultInjector();
        fi != nullptr && !has_error_.load(std::memory_order_relaxed) &&
        fi->Fire(FaultInjector::Site::kIo)) {
      error_ = Status::IoError("injected page read error");
      has_error_.store(true, std::memory_order_release);
    }
  }

  void CopyFrom(const IoStats& other);
  void MoveFrom(IoStats&& other);
  void InvalidateMemos() {
    cache_heap_.fill(~0ULL);
    cache_bitmap_.fill(nullptr);
    cache_next_ = 0;
    memo_key_ = ~0ULL;
  }

  size_t capacity_ = 0;  // 0 = unlimited (pure cold-run accounting)
  bool log_faults_ = false;  // shard mode: record faults for MergeFrom
  std::vector<std::pair<uint64_t, Access>> fault_log_;
  // Cold-run state: per-heap touched-page bitmaps behind a last-page memo
  // and a small heap -> bitmap cache (round-robin replacement; bitmap
  // pointers stay valid across inserts, the map is node-based).
  static constexpr size_t kHeapCacheSlots = 4;
  std::unordered_map<uint64_t, PageBitmap> touched_;
  std::array<uint64_t, kHeapCacheSlots> cache_heap_{~0ULL, ~0ULL, ~0ULL,
                                                    ~0ULL};
  std::array<PageBitmap*, kHeapCacheSlots> cache_bitmap_{};
  size_t cache_next_ = 0;
  uint64_t memo_key_ = ~0ULL;
  // LRU pool (capacity mode only): most-recently-used pages at the front.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> resident_;
  uint64_t faults_ = 0;
  uint64_t seq_faults_ = 0;
  uint64_t rand_faults_ = 0;
  uint64_t touches_ = 0;
  uint64_t evictions_ = 0;
  // Latched injected IO error; surfaced via TakeError(). The atomic flag
  // fronts the (non-atomic) Status so concurrent pollers race only on the
  // exchange, never on the Status itself.
  std::atomic<bool> has_error_{false};
  Status error_;
};

/// The IoStats currently collecting for this thread, or nullptr when IO
/// accounting is off (the common case for unit tests of pure logic).
IoStats* CurrentIo();

/// RAII scope that installs an IoStats as the thread's collector. Scopes
/// nest; the innermost wins. Kernel operators call CurrentIo() on their hot
/// paths, so accounting costs one thread-local load when disabled.
class IoScope {
 public:
  explicit IoScope(IoStats* stats);
  ~IoScope();

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

 private:
  IoStats* previous_;
};

}  // namespace moaflat::storage

#endif  // MOAFLAT_STORAGE_PAGE_ACCOUNTANT_H_
