#include "storage/string_heap.h"

#include <cstring>
#include <memory>

namespace moaflat::storage {

std::shared_ptr<StringHeap> StringHeap::FromBytes(std::vector<char> bytes) {
  auto heap = std::make_shared<StringHeap>();
  heap->bytes_ = std::move(bytes);
  size_t pos = 0;
  while (pos < heap->bytes_.size()) {
    const char* entry = heap->bytes_.data() + pos;
    const size_t len = ::strnlen(entry, heap->bytes_.size() - pos);
    heap->dedup_.emplace(std::string(entry, len),
                         static_cast<int32_t>(pos));
    pos += len + 1;  // NUL terminator (or end of a truncated final entry)
  }
  return heap;
}

int32_t StringHeap::Intern(std::string_view s) {
  auto it = dedup_.find(std::string(s));
  if (it != dedup_.end()) return it->second;
  const int32_t offset = static_cast<int32_t>(bytes_.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
  bytes_.push_back('\0');
  dedup_.emplace(std::string(s), offset);
  return offset;
}

}  // namespace moaflat::storage
