#include "storage/string_heap.h"

namespace moaflat::storage {

int32_t StringHeap::Intern(std::string_view s) {
  auto it = dedup_.find(std::string(s));
  if (it != dedup_.end()) return it->second;
  const int32_t offset = static_cast<int32_t>(bytes_.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
  bytes_.push_back('\0');
  dedup_.emplace(std::string(s), offset);
  return offset;
}

}  // namespace moaflat::storage
