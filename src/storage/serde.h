#ifndef MOAFLAT_STORAGE_SERDE_H_
#define MOAFLAT_STORAGE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "common/value.h"

/// Byte-level encoding primitives shared by the WAL, the checkpoint writer
/// and the row-store replay path. Little-endian fixed-width integers,
/// length-prefixed byte strings, and a tagged encoding for boxed Values.
/// The encoding is canonical: equal inputs produce equal bytes, which is
/// what lets a checkpoint fingerprint stand in for deep env comparison.
namespace moaflat::storage::serde {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

inline void PutBytes(std::string* out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes.data(), bytes.size());
}

/// Raw little-endian dump of a trivially-copyable vector (the native BUN
/// heap of a fixed-width column). Dates serialize as their int32 day count.
template <typename T>
void PutVector(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutU64(out, v.size());
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

inline void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case MonetType::kVoid:
      break;  // nil: the tag is the whole encoding
    case MonetType::kBit:
      PutU8(out, v.AsBit() ? 1 : 0);
      break;
    case MonetType::kChr:
      PutU8(out, static_cast<uint8_t>(v.AsChr()));
      break;
    case MonetType::kSht:
    case MonetType::kInt:
      PutU32(out, static_cast<uint32_t>(v.AsInt()));
      break;
    case MonetType::kLng:
      PutU64(out, static_cast<uint64_t>(v.AsLng()));
      break;
    case MonetType::kOidT:
      PutU64(out, v.AsOid());
      break;
    case MonetType::kFlt: {
      uint32_t bits;
      const float f = v.AsFlt();
      std::memcpy(&bits, &f, sizeof(bits));
      PutU32(out, bits);
      break;
    }
    case MonetType::kDbl: {
      uint64_t bits;
      const double d = v.AsDbl();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case MonetType::kStr:
      PutBytes(out, v.AsStr());
      break;
    case MonetType::kDate:
      PutU32(out, static_cast<uint32_t>(v.AsDate().days()));
      break;
  }
}

/// Bounds-checked sequential reader over an encoded buffer. Every Get
/// returns kIoError on underrun instead of reading past the end, so a
/// corrupt (but checksum-colliding) record can never crash recovery.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : data_(bytes) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Underrun("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> GetU32() {
    if (remaining() < 4) return Underrun("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    if (remaining() < 8) return Underrun("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<std::string_view> GetBytes() {
    MF_ASSIGN_OR_RETURN(const uint32_t n, GetU32());
    if (remaining() < n) return Underrun("bytes");
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  template <typename T>
  Result<std::vector<T>> GetVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    MF_ASSIGN_OR_RETURN(const uint64_t n, GetU64());
    if (n > remaining() / sizeof(T)) return Underrun("vector");
    std::vector<T> v(static_cast<size_t>(n));
    std::memcpy(v.data(), data_.data() + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

  Result<Value> GetValue() {
    MF_ASSIGN_OR_RETURN(const uint8_t tag, GetU8());
    switch (static_cast<MonetType>(tag)) {
      case MonetType::kVoid:
        return Value();
      case MonetType::kBit: {
        MF_ASSIGN_OR_RETURN(const uint8_t b, GetU8());
        return Value::Bit(b != 0);
      }
      case MonetType::kChr: {
        MF_ASSIGN_OR_RETURN(const uint8_t c, GetU8());
        return Value::Chr(static_cast<char>(c));
      }
      case MonetType::kSht:
      case MonetType::kInt: {
        MF_ASSIGN_OR_RETURN(const uint32_t i, GetU32());
        return Value::Int(static_cast<int32_t>(i));
      }
      case MonetType::kLng: {
        MF_ASSIGN_OR_RETURN(const uint64_t l, GetU64());
        return Value::Lng(static_cast<int64_t>(l));
      }
      case MonetType::kOidT: {
        MF_ASSIGN_OR_RETURN(const uint64_t o, GetU64());
        return Value::MakeOid(o);
      }
      case MonetType::kFlt: {
        MF_ASSIGN_OR_RETURN(const uint32_t bits, GetU32());
        float f;
        std::memcpy(&f, &bits, sizeof(f));
        return Value::Flt(f);
      }
      case MonetType::kDbl: {
        MF_ASSIGN_OR_RETURN(const uint64_t bits, GetU64());
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return Value::Dbl(d);
      }
      case MonetType::kStr: {
        MF_ASSIGN_OR_RETURN(const std::string_view s, GetBytes());
        return Value::Str(std::string(s));
      }
      case MonetType::kDate: {
        MF_ASSIGN_OR_RETURN(const uint32_t days, GetU32());
        return Value::MakeDate(Date(static_cast<int32_t>(days)));
      }
    }
    return Status::IoError("unknown Value type tag in serialized record");
  }

 private:
  static Status Underrun(const char* what) {
    return Status::IoError(std::string("serialized record truncated (") +
                            what + ")");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace moaflat::storage::serde

#endif  // MOAFLAT_STORAGE_SERDE_H_
