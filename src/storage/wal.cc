#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "storage/serde.h"

namespace moaflat::storage {
namespace {

/// Anything claiming to be longer than this is treated as a torn/corrupt
/// length prefix, not an allocation request.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

Status Errno(const char* what, const std::string& path) {
  return Status::IoError(std::string(what) + " " + path + ": " +
                         std::strerror(errno));
}

/// Full-buffer write() loop (write may be short on signals/limits).
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t acc) {
  // CRC32C polynomial 0x1EDC6F41, reflected form 0x82F63B78.
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1) ? 0x82F63B78u : 0);
      t[i] = c;
    }
    return t;
  }();
  uint32_t c = ~acc;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return ~c;
}

Result<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return scan;  // no log yet: empty store
    return Errno("open", path);
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (r == 0) break;
    bytes.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);

  size_t pos = 0;
  while (pos < bytes.size()) {
    serde::Cursor header(std::string_view(bytes).substr(pos));
    if (header.remaining() < kFrameHeaderBytes) break;  // torn header
    const uint32_t len = *header.GetU32();
    const uint32_t crc = *header.GetU32();
    if (len > kMaxRecordBytes || header.remaining() < len) break;  // torn
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kFrameHeaderBytes, len);
    if (Crc32c(payload.data(), payload.size()) != crc) break;  // corrupt
    serde::Cursor body(payload);
    // The frame checksum passed, so a malformed payload is a writer bug,
    // not a torn write; surface it instead of silently ending the prefix.
    MF_ASSIGN_OR_RETURN(const uint64_t lsn, body.GetU64());
    MF_ASSIGN_OR_RETURN(const uint8_t kind, body.GetU8());
    WalRecord rec;
    rec.lsn = lsn;
    rec.kind = kind;
    rec.body.assign(payload.substr(9));
    scan.records.push_back(std::move(rec));
    pos += kFrameHeaderBytes + len;
  }
  scan.valid_bytes = pos;
  scan.torn_tail = pos < bytes.size();
  return scan;
}

Result<Wal::OpenResult> Wal::Open(const std::string& path, uint64_t start_lsn,
                                  WalOptions opts) {
  MF_ASSIGN_OR_RETURN(WalScan scan, ScanWal(path));
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  if (scan.torn_tail) {
    // Drop the interrupted write so the file ends on a record boundary;
    // make the truncation durable before accepting new appends after it.
    if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
      const Status st = Errno("ftruncate", path);
      ::close(fd);
      return st;
    }
    if (::fsync(fd) != 0) {
      const Status st = Errno("fsync", path);
      ::close(fd);
      return st;
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    const Status st = Errno("lseek", path);
    ::close(fd);
    return st;
  }
  uint64_t next = start_lsn;
  if (!scan.records.empty() && scan.records.back().lsn + 1 > next) {
    next = scan.records.back().lsn + 1;
  }
  OpenResult out;
  out.wal.reset(new Wal(path, fd, next, opts));
  out.scan = std::move(scan);
  return out;
}

Wal::Wal(std::string path, int fd, uint64_t next_lsn, WalOptions opts)
    : path_(std::move(path)), fd_(fd), opts_(opts), next_lsn_(next_lsn) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Wal::Append(uint8_t kind, std::string_view body) {
  MutexLock lock(mu_);
  if (!io_error_.ok()) return io_error_;

  const uint64_t lsn = next_lsn_;
  std::string frame;
  frame.reserve(kFrameHeaderBytes + 9 + body.size());
  std::string payload;
  payload.reserve(9 + body.size());
  serde::PutU64(&payload, lsn);
  serde::PutU8(&payload, kind);
  payload.append(body.data(), body.size());
  serde::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  serde::PutU32(&frame, Crc32c(payload.data(), payload.size()));
  frame.append(payload);

  if (FaultInjector* f = opts_.fault; f != nullptr) {
    if (f->Fire(FaultInjector::Site::kWalAppend)) {
      if (f->crash_enabled()) {
        // A crash mid-write: half a frame reaches the file, then SIGKILL.
        // Recovery must detect this tail by checksum and discard it.
        (void)WriteAll(fd_, frame.data(), frame.size() / 2, path_);
        FaultInjector::CrashNow();
      }
      io_error_ = Status::IoError("injected fault: wal append");
      return io_error_;
    }
  }

  const Status st = WriteAll(fd_, frame.data(), frame.size(), path_);
  if (!st.ok()) {
    io_error_ = st;
    return st;
  }
  next_lsn_ = lsn + 1;
  appended_ = lsn + 1;
  return lsn;
}

Status Wal::Sync(uint64_t lsn) {
  MutexLock lock(mu_);
  for (;;) {
    if (!io_error_.ok()) return io_error_;
    if (synced_ >= lsn + 1) return Status::OK();
    if (!sync_in_flight_) break;
    cv_.Wait(lock);  // a leader's fsync may already cover us
  }
  // Become the leader: one fsync covers every record appended so far,
  // including those of committers queued behind us (group commit).
  sync_in_flight_ = true;
  const uint64_t cover = appended_;
  ++fsync_count_;
  lock.Unlock();

  Status st;
  if (opts_.fault != nullptr) {
    st = opts_.fault->MaybeFailIo(FaultInjector::Site::kWalFsync,
                                  "wal fsync");
  }
  if (st.ok() && ::fsync(fd_) != 0) st = Errno("fsync", path_);

  lock.Lock();
  sync_in_flight_ = false;
  if (st.ok()) {
    if (cover > synced_) synced_ = cover;
  } else {
    io_error_ = st;
  }
  cv_.NotifyAll();
  if (!st.ok()) return st;
  // cover >= lsn + 1 always: the caller appended lsn before syncing, and
  // the leader snapshot was taken after we held the lock.
  return Status::OK();
}

Status Wal::SyncAll() {
  uint64_t last;
  {
    MutexLock lock(mu_);
    if (!io_error_.ok()) return io_error_;
    if (appended_ == 0) return Status::OK();
    last = appended_ - 1;
  }
  return Sync(last);
}

Status Wal::TruncateAll() {
  MutexLock lock(mu_);
  if (!io_error_.ok()) return io_error_;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0 ||
      ::fsync(fd_) != 0) {
    io_error_ = Errno("truncate", path_);
    return io_error_;
  }
  // LSNs keep rising: synced/appended horizons stay valid, and the
  // checkpoint that triggered this truncation records the horizon.
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

uint64_t Wal::fsyncs() const {
  MutexLock lock(mu_);
  return fsync_count_;
}

}  // namespace moaflat::storage
