#include "mil/analyzer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "kernel/cost_model.h"
#include "kernel/operators.h"
#include "kernel/registry.h"
#include "kernel/scalar_fn.h"

namespace moaflat::mil {
namespace {

using bat::Bat;
using kernel::Bound;
using kernel::DispatchInput;
using kernel::OperandView;
using kernel::OpParam;

// ------------------------------------------------------------- vocabulary

bool IsSetAggOp(const std::string& op) {
  return op.size() > 2 && op.front() == '{' && op.back() == '}';
}
bool IsMultiplexOp(const std::string& op) {
  return op.size() > 2 && op.front() == '[' && op.back() == ']';
}
bool IsScalarAggOp(const std::string& op) {
  return op == "sum" || op == "count" || op == "avg" || op == "min" ||
         op == "max";
}
bool IsAggName(const std::string& name) { return IsScalarAggOp(name); }

/// Arity of the scalar-function vocabulary (kernel/scalar_fn.h); -1 =
/// unknown function.
int ScalarFnArity(const std::string& fn) {
  if (fn == "+" || fn == "-" || fn == "*" || fn == "/" || fn == "=" ||
      fn == "!=" || fn == "<" || fn == "<=" || fn == ">" || fn == ">=" ||
      fn == "and" || fn == "or" || fn == "like" || fn == "concat") {
    return 2;
  }
  if (fn == "not" || fn == "year" || fn == "month" || fn == "day" ||
      fn == "length") {
    return 1;
  }
  if (fn == "ifthen") return 3;
  return -1;
}

/// Void columns carry dense oids; every type comparison first folds them
/// into kOidT so `join(x, extent)` style plans type-check.
MonetType Norm(MonetType t) {
  return t == MonetType::kVoid ? MonetType::kOidT : t;
}

/// How two key types relate for equality-style matching (join heads,
/// select values): exact same normalized type, comparable-but-lossy
/// (differing numeric representations hash/compare differently), or
/// incomparable (str against anything else — the runtime silently matches
/// nothing, see Column::CompareValue).
enum class TypeMatch { kExact, kLossy, kIncomparable };

TypeMatch MatchTypes(MonetType a, MonetType b) {
  const MonetType na = Norm(a);
  const MonetType nb = Norm(b);
  if (na == nb) return TypeMatch::kExact;
  if ((na == MonetType::kStr) != (nb == MonetType::kStr)) {
    return TypeMatch::kIncomparable;
  }
  return TypeMatch::kLossy;
}

// ------------------------------------------------------------- cost model

double PagesOf(const OperandView& v) {
  return kernel::HeapPages(v.size, v.head_width) +
         kernel::HeapPages(v.size, v.tail_width);
}

double FamilyPrice(const std::string& family, const DispatchInput& in) {
  if (auto c = kernel::KernelRegistry::Global().PriceCheapest(family, in)) {
    return *c;
  }
  double pages = PagesOf(in.left);
  if (in.right) pages += PagesOf(*in.right);
  return pages + kernel::kCpuSequential;
}

/// Dispatch view of an abstract binding at one end of its cardinality
/// interval. Catalog-bound names snapshot the real BAT (exact properties
/// and accelerators); derived results are property-free, which prices the
/// scan/hash variants and never a sorted-only shortcut the real result
/// might not support.
OperandView ViewAt(const AbstractBinding& b, double rows) {
  if (b.bound != nullptr) return OperandView::Of(*b.bound);
  OperandView v;
  if (rows < 0) rows = 0;
  v.size = static_cast<size_t>(std::llround(rows));
  v.head_width = TypeWidth(b.head);
  v.tail_width = TypeWidth(b.tail);
  v.head_void = b.head == MonetType::kVoid;
  v.tail_void = b.tail == MonetType::kVoid;
  v.head_oidlike = Norm(b.head) == MonetType::kOidT;
  v.props.hkey = b.head_key;
  return v;
}

// --------------------------------------------------------------- analyzer

constexpr double kUnknownRows = 1e15;  // cardinality of failed inference

class Analyzer {
 public:
  explicit Analyzer(const MilEnv& env) : env_(env) {}

  AnalysisReport Analyze(const MilProgram& program) {
    // First-def lines let name resolution distinguish "used before its
    // definition on line N" from a plain unknown name.
    for (const MilStmt& s : program.stmts) {
      if (first_def_.count(s.var) == 0) first_def_[s.var] = s.line;
    }

    for (const MilStmt& stmt : program.stmts) {
      stmt_ = &stmt;
      CheckShadow(stmt);
      AbstractBinding result = AnalyzeStmt(stmt);

      StmtInfo info;
      info.line = stmt.line;
      info.var = stmt.var;
      info.text = stmt.ToString();
      info.result = result;
      PriceStmt(stmt, result, &info);
      report_.stmts.push_back(std::move(info));

      DefInfo& def = defs_[stmt.var];
      def.line = stmt.line;
      def.read = false;
      bindings_[stmt.var] = result;
    }

    Hygiene(program);
    report_.bindings = bindings_;
    for (const Diagnostic& d : report_.diagnostics) {
      (d.severity == Severity::kError ? report_.errors : report_.warnings)++;
    }
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return std::move(report_);
  }

 private:
  struct DefInfo {
    int line = 0;
    bool read = false;
  };

  void Error(std::string msg) {
    report_.diagnostics.push_back(Diagnostic{
        Severity::kError, stmt_->line, stmt_->var, std::move(msg)});
  }
  void Warn(std::string msg) {
    report_.diagnostics.push_back(Diagnostic{
        Severity::kWarning, stmt_->line, stmt_->var, std::move(msg)});
  }

  static AbstractBinding Unknown() {
    AbstractBinding b;
    b.kind = AbstractBinding::Kind::kUnknown;
    b.card = {0, kUnknownRows};
    return b;
  }

  static AbstractBinding BatOf(MonetType head, MonetType tail,
                               CardInterval card, bool head_key) {
    AbstractBinding b;
    b.kind = AbstractBinding::Kind::kBat;
    b.head = head;
    b.tail = tail;
    b.card = card;
    b.head_key = head_key;
    return b;
  }

  static AbstractBinding ScalarOf(MonetType t) {
    AbstractBinding b;
    b.kind = AbstractBinding::Kind::kScalar;
    b.scalar = t;
    b.card = {1, 1};
    return b;
  }

  /// Resolves a name against the program-so-far, then the environment
  /// catalog. Marks the in-program definition as read.
  const AbstractBinding* Lookup(const std::string& name) {
    auto def = defs_.find(name);
    if (def != defs_.end()) def->second.read = true;
    auto it = bindings_.find(name);
    if (it != bindings_.end()) return &it->second;
    auto env_it = env_.bindings().find(name);
    if (env_it == env_.bindings().end()) return nullptr;
    AbstractBinding b;
    if (const Bat* bat = std::get_if<Bat>(&env_it->second)) {
      b.kind = AbstractBinding::Kind::kBat;
      b.head = bat->head().type();
      b.tail = bat->tail().type();
      b.card = {static_cast<double>(bat->size()),
                static_cast<double>(bat->size())};
      b.head_key = bat->props().hkey || bat->head().is_void();
      b.bound = bat;
    } else {
      b.kind = AbstractBinding::Kind::kScalar;
      b.scalar = std::get<Value>(env_it->second).type();
      b.card = {1, 1};
    }
    return &(bindings_[name] = b);
  }

  /// A BAT operand at argument position `i`; emits the appropriate
  /// diagnostic (missing / literal / scalar / undefined / use-before-def)
  /// and returns Unknown() so later statements do not cascade.
  AbstractBinding BatArg(size_t i) {
    const MilStmt& s = *stmt_;
    if (i >= s.args.size()) {
      Error("operator '" + s.op + "' is missing argument " +
            std::to_string(i + 1));
      return Unknown();
    }
    const MilArg& a = s.args[i];
    if (a.kind != MilArg::Kind::kVar) {
      Error("argument " + std::to_string(i + 1) + " of '" + s.op +
            "' must be a BAT, got literal " + a.lit.ToString());
      return Unknown();
    }
    const AbstractBinding* b = Lookup(a.var);
    if (b == nullptr) {
      auto fd = first_def_.find(a.var);
      if (fd != first_def_.end()) {
        Error("variable '" + a.var + "' used before its definition (line " +
              std::to_string(fd->second) + ")");
      } else {
        Error("unknown MIL variable '" + a.var + "'");
      }
      return Unknown();
    }
    if (b->kind == AbstractBinding::Kind::kScalar) {
      Error("argument " + std::to_string(i + 1) + " of '" + s.op +
            "' must be a BAT; '" + a.var + "' is a " +
            std::string(TypeName(b->scalar)) + " scalar");
      return Unknown();
    }
    return *b;
  }

  /// A scalar operand (literal, or a name bound to a scalar). Type is
  /// kVoid when only known at run time is impossible here — every path
  /// yields a type or diagnoses. Returns nullopt on error.
  std::optional<MonetType> ValArg(size_t i) {
    const MilStmt& s = *stmt_;
    if (i >= s.args.size()) {
      Error("operator '" + s.op + "' is missing argument " +
            std::to_string(i + 1));
      return std::nullopt;
    }
    const MilArg& a = s.args[i];
    if (a.kind == MilArg::Kind::kLit) return a.lit.type();
    const AbstractBinding* b = Lookup(a.var);
    if (b == nullptr) {
      auto fd = first_def_.find(a.var);
      if (fd != first_def_.end()) {
        Error("variable '" + a.var + "' used before its definition (line " +
              std::to_string(fd->second) + ")");
      } else {
        Error("unknown MIL variable '" + a.var + "'");
      }
      return std::nullopt;
    }
    if (b->kind == AbstractBinding::Kind::kBat) {
      Error("argument " + std::to_string(i + 1) + " of '" + s.op +
            "' must be a scalar; '" + a.var + "' is a BAT");
      return std::nullopt;
    }
    if (b->kind == AbstractBinding::Kind::kUnknown) return std::nullopt;
    return b->scalar;
  }

  /// Literal or catalog-bound scalar *value* of an argument; nullopt when
  /// the value only exists at run time (a calc.* result) or is missing.
  std::optional<Value> MaybeVal(size_t i) const {
    if (i >= stmt_->args.size()) return std::nullopt;
    const MilArg& a = stmt_->args[i];
    if (a.kind == MilArg::Kind::kLit) return a.lit;
    auto it = env_.bindings().find(a.var);
    if (it != env_.bindings().end() && defs_.count(a.var) == 0) {
      if (const Value* v = std::get_if<Value>(&it->second)) return *v;
    }
    return std::nullopt;
  }

  void CheckArity(size_t want) {
    if (stmt_->args.size() != want) {
      Error("operator '" + stmt_->op + "' expects " + std::to_string(want) +
            " argument" + (want == 1 ? "" : "s") + ", got " +
            std::to_string(stmt_->args.size()));
    }
  }

  /// Rebinding a name whose previous in-program definition was never read
  /// makes the earlier statement unobservable.
  void CheckShadow(const MilStmt& stmt) {
    auto it = defs_.find(stmt.var);
    if (it != defs_.end() && !it->second.read) {
      report_.diagnostics.push_back(Diagnostic{
          Severity::kWarning, stmt.line, stmt.var,
          "rebinds '" + stmt.var + "' before the definition on line " +
              std::to_string(it->second.line) + " is ever read"});
    }
  }

  // ----------------------------------------------------- type inference

  AbstractBinding AnalyzeStmt(const MilStmt& stmt) {
    const std::string& op = stmt.op;

    if (op.rfind("calc.", 0) == 0) return AnalyzeCalc(stmt);
    if (IsScalarAggOp(op) && stmt.args.size() == 1) {
      return AnalyzeScalarAgg(stmt);
    }
    if (IsMultiplexOp(op)) return AnalyzeMultiplex(stmt);
    if (IsSetAggOp(op)) return AnalyzeSetAgg(stmt);
    if (op == "select" || op.rfind("select.", 0) == 0) {
      return AnalyzeSelect(stmt);
    }
    if (op == "join" || op == "semijoin" || op == "kintersect" ||
        op == "kdiff" || op == "kunion") {
      return AnalyzeBinarySetOp(stmt);
    }
    if (op.rfind("thetajoin.", 0) == 0) return AnalyzeThetaJoin(stmt);
    if (op == "fetch") return AnalyzeFetch(stmt);
    if (op == "histogram") {
      CheckArity(1);
      AbstractBinding in = BatArg(0);
      if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
      return BatOf(MonetType::kOidT, MonetType::kLng,
                   {in.card.lo > 0 ? 1.0 : 0.0, in.card.hi}, true);
    }
    if (op == "mirror") {
      CheckArity(1);
      AbstractBinding in = BatArg(0);
      if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
      return BatOf(in.tail, in.head, in.card, false);
    }
    if (op == "unique" || op == "hunique") {
      CheckArity(1);
      AbstractBinding in = BatArg(0);
      if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
      return BatOf(in.head, in.tail, {in.card.lo > 0 ? 1.0 : 0.0, in.card.hi},
                   op == "hunique" || in.head_key);
    }
    if (op == "group") return AnalyzeGroup(stmt);
    if (op == "mark") return AnalyzeMark();
    if (op == "extent") {
      CheckArity(1);
      AbstractBinding in = BatArg(0);
      if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
      return BatOf(in.head, MonetType::kVoid, in.card, in.head_key);
    }
    if (op == "insert") return AnalyzeInsert();
    if (op == "slice") return AnalyzeSlice();
    if (op == "sort") {
      CheckArity(1);
      AbstractBinding in = BatArg(0);
      if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
      return BatOf(in.head, in.tail, in.card, in.head_key);
    }
    if (op == "topn_max" || op == "topn_min") return AnalyzeTopN();
    if (op == "project") return AnalyzeProject();
    if (op == "append") return AnalyzeAppend();

    if (IsScalarAggOp(op)) {
      Error("aggregate '" + op + "' expects exactly 1 BAT argument, got " +
            std::to_string(stmt.args.size()));
      return Unknown();
    }
    Error("unknown MIL operator '" + op + "'");
    return Unknown();
  }

  /// Element-type applicability of one scalar-function argument; kVoid
  /// elements (unknown upstream) are skipped.
  void CheckScalarFnArg(const std::string& fn, size_t pos, MonetType t) {
    if (t == MonetType::kVoid) return;
    const bool numeric_fn =
        fn == "+" || fn == "-" || fn == "*" || fn == "/";
    if (numeric_fn && t == MonetType::kStr) {
      Error("'" + fn + "' needs numeric operands, argument " +
            std::to_string(pos + 1) + " is str");
    }
    if ((fn == "and" || fn == "or" || fn == "not") && t != MonetType::kBit) {
      Error("'" + fn + "' needs bit operands, argument " +
            std::to_string(pos + 1) + " is " + TypeName(t));
    }
    if ((fn == "year" || fn == "month" || fn == "day") &&
        t != MonetType::kDate) {
      Error("'" + fn + "' needs a date operand, got " + TypeName(t));
    }
    if ((fn == "like" || fn == "length" || fn == "concat") &&
        t != MonetType::kStr) {
      Error("'" + fn + "' needs str operands, argument " +
            std::to_string(pos + 1) + " is " + TypeName(t));
    }
    if (fn == "ifthen" && pos == 0 && t != MonetType::kBit) {
      Error("'ifthen' needs a bit condition, got " + std::string(TypeName(t)));
    }
  }

  void CheckCmpOperands(const std::string& fn,
                        const std::vector<MonetType>& els) {
    const bool cmp = fn == "=" || fn == "!=" || fn == "<" || fn == "<=" ||
                     fn == ">" || fn == ">=";
    if (!cmp || els.size() != 2) return;
    if (els[0] == MonetType::kVoid || els[1] == MonetType::kVoid) return;
    if (MatchTypes(els[0], els[1]) == TypeMatch::kIncomparable) {
      Error("'" + fn + "' compares " + std::string(TypeName(els[0])) +
            " with " + TypeName(els[1]) + "; str only compares with str");
    }
  }

  AbstractBinding AnalyzeCalc(const MilStmt& stmt) {
    const std::string fn = stmt.op.substr(5);
    const int arity = ScalarFnArity(fn);
    if (arity < 0) {
      Error("unknown scalar fn '" + fn + "'");
      return Unknown();
    }
    if (static_cast<int>(stmt.args.size()) != arity) {
      Error("scalar fn '" + fn + "' expects " + std::to_string(arity) +
            " args, got " + std::to_string(stmt.args.size()));
      return Unknown();
    }
    std::vector<MonetType> els;
    bool bad = false;
    for (size_t i = 0; i < stmt.args.size(); ++i) {
      auto t = ValArg(i);
      if (!t) {
        bad = true;
        els.push_back(MonetType::kVoid);
        continue;
      }
      els.push_back(*t);
      CheckScalarFnArg(fn, i, *t);
    }
    CheckCmpOperands(fn, els);
    if (bad) return Unknown();
    auto rt = kernel::ScalarResultType(fn, els);
    if (!rt.ok()) {
      Error(rt.status().message());
      return Unknown();
    }
    return ScalarOf(*rt);
  }

  AbstractBinding AnalyzeScalarAgg(const MilStmt& stmt) {
    AbstractBinding in = BatArg(0);
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    const std::string& op = stmt.op;
    if ((op == "sum" || op == "avg") && in.tail == MonetType::kStr) {
      Error("'" + op + "' needs a numeric tail, '" +
            stmt.args[0].ToString() + "' has a str tail");
      return Unknown();
    }
    if (op == "sum" || op == "avg") return ScalarOf(MonetType::kDbl);
    if (op == "count") return ScalarOf(MonetType::kLng);
    return ScalarOf(Norm(in.tail));  // min / max
  }

  AbstractBinding AnalyzeMultiplex(const MilStmt& stmt) {
    const std::string fn = stmt.op.substr(1, stmt.op.size() - 2);
    const int arity = ScalarFnArity(fn);
    if (arity < 0) {
      Error("unknown scalar fn '" + fn + "' in multiplex");
      return Unknown();
    }
    if (static_cast<int>(stmt.args.size()) != arity) {
      Error("multiplex [" + fn + "] expects " + std::to_string(arity) +
            " args, got " + std::to_string(stmt.args.size()));
      return Unknown();
    }
    // Element type per argument: a BAT contributes its tail, a scalar its
    // value type. The first BAT is the driver; the result is one value per
    // driver BUN.
    std::vector<MonetType> els;
    const AbstractBinding* driver = nullptr;
    double other_hi_factor = 1;
    bool bad = false;
    for (size_t i = 0; i < stmt.args.size(); ++i) {
      const MilArg& a = stmt.args[i];
      if (a.kind == MilArg::Kind::kLit) {
        els.push_back(a.lit.type());
        CheckScalarFnArg(fn, i, a.lit.type());
        continue;
      }
      const AbstractBinding* b = Lookup(a.var);
      if (b == nullptr) {
        auto fd = first_def_.find(a.var);
        if (fd != first_def_.end()) {
          Error("variable '" + a.var +
                "' used before its definition (line " +
                std::to_string(fd->second) + ")");
        } else {
          Error("unknown MIL variable '" + a.var + "'");
        }
        bad = true;
        els.push_back(MonetType::kVoid);
        continue;
      }
      if (b->kind == AbstractBinding::Kind::kUnknown) {
        bad = true;
        els.push_back(MonetType::kVoid);
        continue;
      }
      if (b->kind == AbstractBinding::Kind::kScalar) {
        els.push_back(b->scalar);
        CheckScalarFnArg(fn, i, b->scalar);
        continue;
      }
      els.push_back(b->tail);
      CheckScalarFnArg(fn, i, b->tail);
      if (driver == nullptr) {
        driver = b;
      } else if (!b->head_key) {
        // Unsynced operands take the head-join path, where a non-key head
        // can multiply the driver's rows.
        other_hi_factor *= std::max(1.0, b->card.hi);
      }
    }
    CheckCmpOperands(fn, els);
    if (driver == nullptr) {
      Error("multiplex [" + fn + "] has no BAT operand");
      return Unknown();
    }
    if (bad) return Unknown();
    auto rt = kernel::ScalarResultType(fn, els);
    if (!rt.ok()) {
      Error(rt.status().message());
      return Unknown();
    }
    return BatOf(driver->head, *rt,
                 {0, driver->card.hi * other_hi_factor}, driver->head_key);
  }

  AbstractBinding AnalyzeSetAgg(const MilStmt& stmt) {
    CheckArity(1);
    AbstractBinding in = BatArg(0);
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    const std::string agg = stmt.op.substr(1, stmt.op.size() - 2);
    if (!IsAggName(agg)) {
      Error("unknown aggregate '" + agg + "'");
      return Unknown();
    }
    if ((agg == "sum" || agg == "avg") && in.tail == MonetType::kStr) {
      Error("'{" + agg + "}' needs a numeric tail, '" +
            stmt.args[0].ToString() + "' has a str tail");
      return Unknown();
    }
    MonetType out = MonetType::kDbl;
    if (agg == "count") out = MonetType::kLng;
    if (agg == "min" || agg == "max") out = Norm(in.tail);
    return BatOf(Norm(in.head), out,
                 {in.card.lo > 0 ? 1.0 : 0.0, in.card.hi}, true);
  }

  AbstractBinding AnalyzeSelect(const MilStmt& stmt) {
    const std::string& op = stmt.op;
    AbstractBinding in = BatArg(0);
    CheckArityOneOf(op == "select" ? std::vector<size_t>{2, 3}
                                   : std::vector<size_t>{2});
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();

    if (op == "select.like") {
      if (in.tail != MonetType::kStr) {
        Error("select.like needs a str tail, '" + stmt.args[0].ToString() +
              "' has a " + std::string(TypeName(in.tail)) + " tail");
        return Unknown();
      }
      auto pat = ValArg(1);
      if (pat && *pat != MonetType::kStr) {
        Error("select.like needs a string pattern, got " + std::string(TypeName(*pat)));
        return Unknown();
      }
      return BatOf(in.head, in.tail, {0, in.card.hi}, in.head_key);
    }
    if (op.rfind("select.", 0) == 0) {
      const std::string cmp = op.substr(7);
      if (cmp != "!=" && cmp != "<" && cmp != "<=" && cmp != ">" &&
          cmp != ">=") {
        Error("unknown select comparator '" + cmp + "'");
        return Unknown();
      }
    }

    // Every predicate value must be comparable with the tail: a str/non-str
    // mismatch silently selects nothing at run time (Column::CompareValue
    // orders str columns after every non-str value).
    for (size_t i = 1; i < stmt.args.size() && i <= 2; ++i) {
      auto t = ValArg(i);
      if (!t) return Unknown();
      if (MatchTypes(in.tail, *t) == TypeMatch::kIncomparable) {
        Error("'" + op + "' compares a " + std::string(TypeName(in.tail)) +
              " tail with a " + TypeName(*t) + " value; no row can match");
        return Unknown();
      }
    }

    // Cardinality: exact two-probe narrowing on tail-sorted catalog BATs;
    // [0, n] otherwise.
    CardInterval card{0, in.card.hi};
    double sel = -1;
    if (in.bound != nullptr) {
      Bound lo, hi;
      if (ReconstructBounds(stmt, &lo, &hi)) {
        sel = kernel::EstimateSelectivity(*in.bound, lo, hi);
        if (sel >= 0) {
          const double rows = sel * in.card.hi;
          card = {std::floor(rows), std::ceil(rows)};
        }
      }
    }
    select_sel_[stmt_index_of(stmt)] = sel;
    return BatOf(in.head, in.tail, card, in.head_key);
  }

  AbstractBinding AnalyzeBinarySetOp(const MilStmt& stmt) {
    const std::string& op = stmt.op;
    CheckArity(2);
    AbstractBinding l = BatArg(0);
    AbstractBinding r = BatArg(1);
    if (l.kind != AbstractBinding::Kind::kBat ||
        r.kind != AbstractBinding::Kind::kBat) {
      return Unknown();
    }
    // join matches l's tail against r's head; the set ops match heads.
    const MonetType lk = op == "join" ? l.tail : l.head;
    const MonetType rk = r.head;
    switch (MatchTypes(lk, rk)) {
      case TypeMatch::kIncomparable:
        Error("'" + op + "' matches a " + std::string(TypeName(lk)) +
              " column against a " + TypeName(rk) +
              " column; no pair can match");
        return Unknown();
      case TypeMatch::kLossy:
        Warn("'" + op + "' matches " + std::string(TypeName(lk)) +
             " against " + TypeName(rk) +
             "; differing representations usually match nothing");
        break;
      case TypeMatch::kExact:
        break;
    }
    if ((op == "kunion" || op == "append") &&
        MatchTypes(l.tail, r.tail) != TypeMatch::kExact) {
      Error("'" + op + "' mixes a " + std::string(TypeName(l.tail)) +
            " tail with a " + TypeName(r.tail) + " tail");
      return Unknown();
    }

    if (op == "join") {
      const double hi =
          r.head_key ? l.card.hi
                     : std::min(l.card.hi * std::max(1.0, r.card.hi),
                                kUnknownRows);
      return BatOf(l.head, r.tail, {0, hi}, l.head_key && r.head_key);
    }
    if (op == "kdiff") {
      return BatOf(l.head, l.tail, {0, l.card.hi}, l.head_key);
    }
    if (op == "kunion") {
      return BatOf(l.head, l.tail, {l.card.lo, l.card.hi + r.card.hi},
                   l.head_key && r.head_key);
    }
    // semijoin / kintersect: l rows whose head occurs in r.
    const double hi =
        l.head_key ? std::min(l.card.hi, r.card.hi) : l.card.hi;
    return BatOf(l.head, l.tail, {0, hi}, l.head_key);
  }

  AbstractBinding AnalyzeThetaJoin(const MilStmt& stmt) {
    CheckArity(2);
    const std::string cmp = stmt.op.substr(10);
    if (cmp != "<" && cmp != "<=" && cmp != ">" && cmp != ">=" &&
        cmp != "!=") {
      Error("unknown theta comparator '" + cmp + "'");
      return Unknown();
    }
    AbstractBinding l = BatArg(0);
    AbstractBinding r = BatArg(1);
    if (l.kind != AbstractBinding::Kind::kBat ||
        r.kind != AbstractBinding::Kind::kBat) {
      return Unknown();
    }
    if (MatchTypes(l.tail, r.head) == TypeMatch::kIncomparable) {
      Error("'" + stmt.op + "' compares a " +
            std::string(TypeName(l.tail)) + " tail with a " +
            TypeName(r.head) + " head; no pair can match");
      return Unknown();
    }
    const double hi =
        std::min(l.card.hi * std::max(1.0, r.card.hi), kUnknownRows);
    return BatOf(l.head, r.tail, {0, hi}, false);
  }

  AbstractBinding AnalyzeFetch(const MilStmt& stmt) {
    CheckArity(2);
    AbstractBinding in = BatArg(0);
    AbstractBinding pos = BatArg(1);
    if (in.kind != AbstractBinding::Kind::kBat ||
        pos.kind != AbstractBinding::Kind::kBat) {
      return Unknown();
    }
    if (Norm(pos.tail) != MonetType::kOidT) {
      Error("fetch positions need an oid (or void) tail, '" +
            stmt.args[1].ToString() + "' has a " +
            std::string(TypeName(pos.tail)) + " tail");
      return Unknown();
    }
    return BatOf(MonetType::kOidT, in.tail, pos.card, false);
  }

  AbstractBinding AnalyzeGroup(const MilStmt& stmt) {
    CheckArityOneOf({1, 2});
    AbstractBinding in = BatArg(0);
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    if (stmt.args.size() >= 2) {
      AbstractBinding refine = BatArg(1);
      if (refine.kind != AbstractBinding::Kind::kBat) return Unknown();
    }
    return BatOf(in.head, MonetType::kOidT, in.card, in.head_key);
  }

  AbstractBinding AnalyzeMark() {
    CheckArity(2);
    AbstractBinding in = BatArg(0);
    auto base = ValArg(1);
    if (base && (*base == MonetType::kStr || *base == MonetType::kDate)) {
      Error("mark base must cast to oid, got " + std::string(TypeName(*base)));
      return Unknown();
    }
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    return BatOf(in.head, MonetType::kOidT, in.card, in.head_key);
  }

  AbstractBinding AnalyzeSlice() {
    CheckArity(3);
    AbstractBinding in = BatArg(0);
    CardInterval card{0, in.card.hi};
    auto lo = ValArg(1);
    auto hi = ValArg(2);
    for (auto t : {lo, hi}) {
      if (t && (*t == MonetType::kStr || *t == MonetType::kDate)) {
        Error("slice bounds must cast to lng, got " + std::string(TypeName(*t)));
        return Unknown();
      }
    }
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    auto lo_v = MaybeVal(1);
    auto hi_v = MaybeVal(2);
    if (lo_v && hi_v) {
      auto lo_i = lo_v->CastTo(MonetType::kLng);
      auto hi_i = hi_v->CastTo(MonetType::kLng);
      if (lo_i.ok() && hi_i.ok()) {
        const double k = std::max<double>(
            0, static_cast<double>(hi_i->AsLng()) - lo_i->AsLng() + 1);
        card.hi = std::min(card.hi, k);
      }
    }
    return BatOf(in.head, in.tail, card, in.head_key);
  }

  AbstractBinding AnalyzeTopN() {
    CheckArity(2);
    AbstractBinding in = BatArg(0);
    auto n_t = ValArg(1);
    if (n_t && (*n_t == MonetType::kStr || *n_t == MonetType::kDate)) {
      Error("topn count must cast to lng, got " + std::string(TypeName(*n_t)));
      return Unknown();
    }
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    CardInterval card{0, in.card.hi};
    if (auto n = MaybeVal(1)) {
      auto n_i = n->CastTo(MonetType::kLng);
      if (n_i.ok()) {
        const double k = static_cast<double>(n_i->AsLng());
        card = {std::min(in.card.lo, k), std::min(in.card.hi, k)};
      }
    }
    return BatOf(in.head, in.tail, card, in.head_key);
  }

  AbstractBinding AnalyzeProject() {
    CheckArity(2);
    AbstractBinding in = BatArg(0);
    auto t = ValArg(1);
    if (in.kind != AbstractBinding::Kind::kBat || !t) return Unknown();
    return BatOf(in.head, *t, in.card, in.head_key);
  }

  AbstractBinding AnalyzeInsert() {
    CheckArity(3);
    AbstractBinding in = BatArg(0);
    if (in.kind != AbstractBinding::Kind::kBat) return Unknown();
    // The kernel materializes void columns as oid when inserting (a dense
    // sequence plus an arbitrary BUN is no longer dense).
    const MonetType head_t =
        in.head == MonetType::kVoid ? MonetType::kOidT : in.head;
    const MonetType tail_t =
        in.tail == MonetType::kVoid ? MonetType::kOidT : in.tail;
    auto check = [&](size_t i, MonetType want, const char* side) {
      auto v = MaybeVal(i);
      if (!v.has_value() || want == MonetType::kVoid) return;
      if (!v->CastTo(want).ok()) {
        Error(std::string("'insert' ") + side + " value " + v->ToString() +
              " is not coercible to " + TypeName(want));
      }
    };
    check(1, head_t, "head");
    check(2, tail_t, "tail");
    // Sortedness and keyness are guarded (rechecked) by the kernel, not
    // provable here; card grows by exactly the one inserted BUN.
    return BatOf(head_t, tail_t, {in.card.lo + 1, in.card.hi + 1}, false);
  }

  AbstractBinding AnalyzeAppend() {
    CheckArity(2);
    AbstractBinding l = BatArg(0);
    AbstractBinding r = BatArg(1);
    if (l.kind != AbstractBinding::Kind::kBat ||
        r.kind != AbstractBinding::Kind::kBat) {
      return Unknown();
    }
    // Append concatenates columns; the kernel rejects mismatched types.
    if (MatchTypes(l.head, r.head) != TypeMatch::kExact ||
        MatchTypes(l.tail, r.tail) != TypeMatch::kExact) {
      Error("'append' requires matching column types, got [" +
            std::string(TypeName(l.head)) + "," + TypeName(l.tail) +
            "] and [" + TypeName(r.head) + "," + TypeName(r.tail) + "]");
      return Unknown();
    }
    return BatOf(l.head, l.tail,
                 {l.card.lo + r.card.lo, l.card.hi + r.card.hi}, false);
  }

  void CheckArityOneOf(const std::vector<size_t>& oks) {
    for (size_t n : oks) {
      if (stmt_->args.size() == n) return;
    }
    std::string want;
    for (size_t i = 0; i < oks.size(); ++i) {
      if (i > 0) want += " or ";
      want += std::to_string(oks[i]);
    }
    Error("operator '" + stmt_->op + "' expects " + want +
          " arguments, got " + std::to_string(stmt_->args.size()));
  }

  bool ReconstructBounds(const MilStmt& stmt, Bound* lo, Bound* hi) const {
    const std::string& op = stmt.op;
    if (op == "select") {
      auto v1 = MaybeVal(1);
      if (stmt.args.size() == 2 && v1) {
        *lo = Bound{true, true, *v1};
        *hi = Bound{true, true, *v1};
        return true;
      }
      if (stmt.args.size() == 3 && v1) {
        auto v2 = MaybeVal(2);
        if (v2) {
          *lo = Bound{true, true, *v1};
          *hi = Bound{true, true, *v2};
          return true;
        }
      }
      return false;
    }
    const std::string cmp = op.substr(7);
    auto v = MaybeVal(1);
    if (!v) return false;
    if (cmp == "<") {
      *hi = Bound{true, false, *v};
    } else if (cmp == "<=") {
      *hi = Bound{true, true, *v};
    } else if (cmp == ">") {
      *lo = Bound{true, false, *v};
    } else if (cmp == ">=") {
      *lo = Bound{true, true, *v};
    } else {
      return false;
    }
    return true;
  }

  // ------------------------------------------------------ cost intervals

  size_t stmt_index_of(const MilStmt& stmt) const {
    return static_cast<size_t>(&stmt - stmt_base_);
  }

  /// DispatchInput over operand views at one interval end. When both
  /// operands are catalog BATs the kernel's own snapshot carries the exact
  /// sync keys, alignment and accelerators.
  DispatchInput InputAt(const AbstractBinding& l, bool hi_end) const {
    DispatchInput in;
    in.left = ViewAt(l, hi_end ? l.card.hi : l.card.lo);
    return in;
  }
  DispatchInput InputAt(const AbstractBinding& l, const AbstractBinding& r,
                        bool hi_end) const {
    if (l.bound != nullptr && r.bound != nullptr) {
      return kernel::MakeInput(*l.bound, *r.bound);
    }
    DispatchInput in;
    in.left = ViewAt(l, hi_end ? l.card.hi : l.card.lo);
    in.right = ViewAt(r, hi_end ? r.card.hi : r.card.lo);
    return in;
  }

  const AbstractBinding* Peek(const MilArg& a) const {
    if (a.kind != MilArg::Kind::kVar) return nullptr;
    auto it = bindings_.find(a.var);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  /// Section 5.2.2 fault price of the statement at both interval ends.
  /// The hi bound prices the cheapest applicable variant over the largest
  /// operand views any execution can present; the lo bound subtracts the
  /// model's sub-page CPU tie-breaker terms, so it never overtakes a
  /// measured run of the same plan.
  void PriceStmt(const MilStmt& stmt, const AbstractBinding& result,
                 StmtInfo* info) {
    for (int end = 0; end < 2; ++end) {
      const bool hi_end = end == 1;
      double f = PriceAt(stmt, result, hi_end);
      if (!hi_end) f = std::max(0.0, f - 1.0);
      (hi_end ? info->faults_hi : info->faults_lo) = f;
    }
    if (info->faults_lo > info->faults_hi) {
      info->faults_lo = info->faults_hi;
    }
  }

  double PriceAt(const MilStmt& stmt, const AbstractBinding& result,
                 bool hi_end) {
    const std::string& op = stmt.op;
    const AbstractBinding* a0 =
        stmt.args.empty() ? nullptr : Peek(stmt.args[0]);
    const AbstractBinding* a1 =
        stmt.args.size() < 2 ? nullptr : Peek(stmt.args[1]);
    auto bat0 = [&]() -> const AbstractBinding* {
      return a0 != nullptr && a0->kind == AbstractBinding::Kind::kBat ? a0
                                                                      : nullptr;
    };
    auto bat1 = [&]() -> const AbstractBinding* {
      return a1 != nullptr && a1->kind == AbstractBinding::Kind::kBat ? a1
                                                                      : nullptr;
    };
    auto view = [&](const AbstractBinding& b) {
      return ViewAt(b, hi_end ? b.card.hi : b.card.lo);
    };

    if (op.rfind("calc.", 0) == 0) return 0;
    if (IsScalarAggOp(op) && stmt.args.size() == 1) {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      const OperandView v = view(*in);
      return kernel::HeapPages(v.size, v.tail_width);
    }
    if (IsMultiplexOp(op)) {
      const std::string fn = op.substr(1, op.size() - 2);
      const AbstractBinding* driver = nullptr;
      const AbstractBinding* other = nullptr;
      for (const MilArg& a : stmt.args) {
        const AbstractBinding* b = Peek(a);
        if (b == nullptr || b->kind != AbstractBinding::Kind::kBat) continue;
        if (driver == nullptr) {
          driver = b;
        } else if (other == nullptr) {
          other = b;
        }
      }
      if (driver == nullptr) return 0;
      DispatchInput in = other != nullptr ? InputAt(*driver, *other, hi_end)
                                          : InputAt(*driver, hi_end);
      in.param = OpParam{static_cast<int64_t>(stmt.args.size()), fn, false};
      return FamilyPrice("multiplex", in);
    }
    if (IsSetAggOp(op)) {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      return FamilyPrice("set_aggregate", InputAt(*in, hi_end));
    }
    if (op == "select" || op.rfind("select.", 0) == 0) {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      DispatchInput di = InputAt(*in, hi_end);
      auto sel = select_sel_.find(stmt_index_of(stmt));
      if (sel != select_sel_.end()) di.est_selectivity = sel->second;
      return FamilyPrice("select", di);
    }
    if (op == "join" || op == "semijoin" || op == "kintersect" ||
        op == "kdiff" || op == "kunion") {
      const AbstractBinding* l = bat0();
      const AbstractBinding* r = bat1();
      if (l == nullptr || r == nullptr) return 0;
      const std::string family = op == "join"     ? "join"
                                 : op == "kdiff"  ? "kdiff"
                                 : op == "kunion" ? "kunion"
                                                  : "semijoin";
      return FamilyPrice(family, InputAt(*l, *r, hi_end));
    }
    if (op.rfind("thetajoin.", 0) == 0) {
      const AbstractBinding* l = bat0();
      const AbstractBinding* r = bat1();
      if (l == nullptr || r == nullptr) return 0;
      const std::string cmp = op.substr(10);
      kernel::CmpOp c = kernel::CmpOp::kLt;
      if (cmp == "<=") c = kernel::CmpOp::kLe;
      if (cmp == ">") c = kernel::CmpOp::kGt;
      if (cmp == ">=") c = kernel::CmpOp::kGe;
      if (cmp == "!=") c = kernel::CmpOp::kNe;
      DispatchInput in = InputAt(*l, *r, hi_end);
      in.param = OpParam{static_cast<int64_t>(c), "", false};
      return FamilyPrice("thetajoin", in);
    }
    if (op == "group") {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      if (stmt.args.size() == 1) return FamilyPrice("group", InputAt(*in, hi_end));
      const AbstractBinding* refine = bat1();
      if (refine == nullptr) return 0;
      return FamilyPrice("group_refine", InputAt(*in, *refine, hi_end));
    }

    // Unregistered reshaping operators: one sequential pass, or the
    // random-fetch page model for positional gathers.
    if (op == "fetch") {
      const AbstractBinding* in = bat0();
      const AbstractBinding* pos = bat1();
      if (in == nullptr || pos == nullptr) return 0;
      const OperandView iv = view(*in);
      const OperandView pv = view(*pos);
      return PagesOf(pv) + kernel::RandomFetchPages(
                               iv.size, iv.tail_width,
                               hi_end ? pos->card.hi : pos->card.lo);
    }
    if (op == "histogram" || op == "unique" || op == "hunique" ||
        op == "sort") {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      return PagesOf(view(*in)) + kernel::kCpuHashed;
    }
    if (op == "mirror") return 0;  // property bookkeeping, no heap copied
    if (op == "mark" || op == "extent" || op == "project") {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      const OperandView v = view(*in);
      return kernel::HeapPages(v.size, v.head_width);
    }
    if (op == "slice" || op == "topn_max" || op == "topn_min") {
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      if (op == "slice") {
        const double rows = hi_end ? result.card.hi : result.card.lo;
        const OperandView v = view(*in);
        return kernel::HeapPages(static_cast<uint64_t>(rows), v.head_width) +
               kernel::HeapPages(static_cast<uint64_t>(rows), v.tail_width);
      }
      return PagesOf(view(*in));
    }
    if (op == "append") {
      const AbstractBinding* l = bat0();
      const AbstractBinding* r = bat1();
      if (l == nullptr || r == nullptr) return 0;
      return PagesOf(view(*l)) + PagesOf(view(*r));
    }
    if (op == "insert") {
      // One sequential pass over the carried-over prefix (both columns).
      const AbstractBinding* in = bat0();
      if (in == nullptr) return 0;
      return PagesOf(view(*in));
    }
    return 0;
  }

  // ------------------------------------------------------------- hygiene

  void Hygiene(const MilProgram& program) {
    // Observable sinks: the declared results, or — for programs without a
    // result clause, where the shell prints the last binding — the final
    // statement. Anything else computed but never read is dead weight.
    std::set<std::string> sinks(program.results.begin(),
                               program.results.end());
    if (sinks.empty() && !program.stmts.empty()) {
      sinks.insert(program.stmts.back().var);
    }
    for (const MilStmt& s : program.stmts) {
      auto def = defs_.find(s.var);
      if (def == defs_.end() || def->second.line != s.line) continue;
      if (!def->second.read && sinks.count(s.var) == 0) {
        report_.diagnostics.push_back(Diagnostic{
            Severity::kWarning, s.line, s.var,
            "binding '" + s.var + "' is never read and not a result"});
      }
    }
    for (const std::string& name : sinks) {
      auto it = bindings_.find(name);
      if (it == bindings_.end()) continue;
      const AbstractBinding& b = it->second;
      if (b.kind == AbstractBinding::Kind::kBat && b.card.hi <= 0) {
        report_.diagnostics.push_back(Diagnostic{
            Severity::kWarning, defs_.count(name) ? defs_[name].line : 0,
            name, "result '" + name + "' is statically empty"});
      }
    }
  }

 public:
  void SetStmtBase(const MilStmt* base) { stmt_base_ = base; }

 private:
  const MilEnv& env_;
  AnalysisReport report_;
  std::map<std::string, AbstractBinding> bindings_;
  std::map<std::string, DefInfo> defs_;
  std::map<std::string, int> first_def_;
  std::map<size_t, double> select_sel_;  // stmt index -> two-probe estimate
  const MilStmt* stmt_ = nullptr;
  const MilStmt* stmt_base_ = nullptr;
};

}  // namespace

// ------------------------------------------------------------- rendering

std::string Diagnostic::ToString() const {
  std::string s = "line " + std::to_string(line) + ": ";
  s += severity == Severity::kError ? "error: " : "warning: ";
  s += message;
  return s;
}

std::string AbstractBinding::ToString() const {
  switch (kind) {
    case Kind::kScalar:
      return std::string(TypeName(scalar)) + " scalar";
    case Kind::kBat: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "] rows in [%.0f, %.0f]", card.lo,
                    card.hi);
      return "[" + std::string(TypeName(head)) + "," + TypeName(tail) + buf;
    }
    case Kind::kUnknown:
      break;
  }
  return "unknown";
}

std::string AnalysisReport::DiagnosticsString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return d.ToString();
  }
  return "";
}

std::string AnalysisReport::SchemaString(
    const std::vector<std::string>& names) const {
  std::string out;
  for (const std::string& name : names) {
    auto it = bindings.find(name);
    if (it == bindings.end()) continue;
    out += name + " : " + it->second.ToString() + "\n";
  }
  return out;
}

// -------------------------------------------------------------- analysis

AnalysisReport AnalyzeProgram(const MilProgram& program, const MilEnv& env) {
  Analyzer a(env);
  a.SetStmtBase(program.stmts.data());
  return a.Analyze(program);
}

std::vector<std::string> ResultNames(const MilProgram& program) {
  if (!program.results.empty()) return program.results;
  std::vector<std::string> names;
  names.reserve(program.stmts.size());
  for (const MilStmt& s : program.stmts) names.push_back(s.var);
  return names;
}

}  // namespace moaflat::mil
