#ifndef MOAFLAT_MIL_INTERPRETER_H_
#define MOAFLAT_MIL_INTERPRETER_H_

#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "bat/bat.h"
#include "common/result.h"
#include "kernel/exec_context.h"
#include "kernel/operators.h"
#include "mil/program.h"

namespace moaflat::mil {

/// Variable bindings of a MIL execution: names map to BATs (tables) or
/// Values (scalar aggregate results).
class MilEnv {
 public:
  using Binding = std::variant<bat::Bat, Value>;

  void BindBat(const std::string& name, bat::Bat b) {
    vars_[name] = std::move(b);
  }
  void BindValue(const std::string& name, Value v) {
    vars_[name] = std::move(v);
  }
  void Bind(const std::string& name, Binding b) { vars_[name] = std::move(b); }

  bool Has(const std::string& name) const { return vars_.count(name) > 0; }

  Result<bat::Bat> GetBat(const std::string& name) const;
  Result<Value> GetValue(const std::string& name) const;

  const std::map<std::string, Binding>& bindings() const { return vars_; }

 private:
  std::map<std::string, Binding> vars_;
};

/// Per-statement execution record, the raw material of the Fig. 10 trace:
/// elapsed time, simulated page faults, result cardinality and the
/// implementation(s) the dynamic optimizer picked.
struct StmtTrace {
  std::string text;
  int64_t elapsed_us = 0;
  uint64_t faults = 0;
  size_t out_size = 0;
  std::string impl;
};

/// Executes MIL programs against a MilEnv using the kernel operators.
/// Every statement materializes its result into the environment, mirroring
/// Monet's "BAT-algebra operations materialize their result and never
/// change their operands" (Section 4.2).
///
/// Execution state flows through an ExecContext: every statement runs under
/// a copy of the session context whose tracer is swapped for a per-statement
/// one (the raw material of the Fig. 10 trace); the records are forwarded to
/// the session tracer afterwards. Without an explicit context the
/// interpreter snapshots the legacy thread-local scopes per statement.
class MilInterpreter {
 public:
  explicit MilInterpreter(MilEnv* env,
                          const kernel::ExecContext* ctx = nullptr)
      : env_(env), ctx_(ctx) {}

  /// Runs all statements; on success the result variables are bound in the
  /// environment and the per-statement traces are available.
  Status Run(const MilProgram& program);

  /// Executes a single statement.
  Status Exec(const MilStmt& stmt);

  /// Statement-level execution hook: called before each statement runs;
  /// a non-OK return aborts the program with that status, leaving the
  /// environment with the bindings committed so far. The query service
  /// uses this for cooperative cancellation between the statements of an
  /// admitted program (a running kernel is never interrupted mid-flight).
  using StmtHook = std::function<Status(const MilStmt&)>;
  void SetStmtHook(StmtHook hook) { hook_ = std::move(hook); }

  const std::vector<StmtTrace>& traces() const { return traces_; }

  /// Renders the trace like Fig. 10 of the paper (elapsed ms, page faults,
  /// statement text).
  std::string TraceString() const;

 private:
  Result<bat::Bat> EvalBatOp(const kernel::ExecContext& ctx,
                             const MilStmt& stmt);
  Status ExecScalarCalc(const MilStmt& stmt);

  MilEnv* env_;
  const kernel::ExecContext* ctx_;
  StmtHook hook_;
  std::vector<StmtTrace> traces_;
};

}  // namespace moaflat::mil

#endif  // MOAFLAT_MIL_INTERPRETER_H_
