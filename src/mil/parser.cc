#include "mil/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace moaflat::mil {
namespace {

enum class Tok {
  kEnd,
  kIdent,     // names; also [f] and {agg} operator heads
  kInt,
  kFloat,
  kChar,
  kString,
  kBool,
  kLParen,
  kRParen,
  kComma,
  kAssign,    // :=
  kDot,
  kNewline,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  size_t pos = 0;
  int line = 1;  // 1-based source line, the anchor for diagnostics
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      const size_t start = i_;
      if (c == '#') {
        while (i_ < src_.size() && src_[i_] != '\n') ++i_;
        continue;
      }
      if (c == '\n' || c == ';') {
        out.push_back({Tok::kNewline, "\n", start, line_});
        if (c == '\n') ++line_;
        ++i_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '[' || c == '{') {
        // Multiplex / set-aggregate operator head: scan to the matching
        // close bracket; the whole "[year]" / "{sum}" is one identifier.
        const char close = c == '[' ? ']' : '}';
        std::string op(1, c);
        ++i_;
        while (i_ < src_.size() && src_[i_] != close) op += src_[i_++];
        if (i_ >= src_.size()) {
          return Status::ParseError("unterminated operator bracket");
        }
        op += close;
        ++i_;
        out.push_back({Tok::kIdent, op, start, line_});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string id;
        while (i_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
                src_[i_] == '_' || src_[i_] == '#' || src_[i_] == '.' ||
                src_[i_] == '<' || src_[i_] == '>' || src_[i_] == '=' ||
                src_[i_] == '!')) {
          // Identifiers may embed '.' for select.<= style operator names;
          // postfix '.' is disambiguated below: a '.' followed by a known
          // postfix op splits the identifier.
          id += src_[i_++];
        }
        EmitIdentWithPostfix(id, start, &out);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        std::string num(1, c);
        ++i_;
        bool is_float = false;
        while (i_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[i_])) ||
                src_[i_] == '.')) {
          if (src_[i_] == '.') is_float = true;
          num += src_[i_++];
        }
        out.push_back({is_float ? Tok::kFloat : Tok::kInt, num, start, line_});
        continue;
      }
      switch (c) {
        case '\'': {
          if (i_ + 2 >= src_.size() || src_[i_ + 2] != '\'') {
            return Status::ParseError("bad char literal");
          }
          out.push_back({Tok::kChar, std::string(1, src_[i_ + 1]), start, line_});
          i_ += 3;
          continue;
        }
        case '"': {
          std::string s;
          ++i_;
          while (i_ < src_.size() && src_[i_] != '"') s += src_[i_++];
          if (i_ >= src_.size()) {
            return Status::ParseError("unterminated string");
          }
          ++i_;
          out.push_back({Tok::kString, s, start, line_});
          continue;
        }
        case '(':
          out.push_back({Tok::kLParen, "(", start, line_});
          ++i_;
          continue;
        case ')':
          out.push_back({Tok::kRParen, ")", start, line_});
          ++i_;
          continue;
        case ',':
          out.push_back({Tok::kComma, ",", start, line_});
          ++i_;
          continue;
        case '.':
          out.push_back({Tok::kDot, ".", start, line_});
          ++i_;
          continue;
        case ':':
          if (i_ + 1 < src_.size() && src_[i_ + 1] == '=') {
            out.push_back({Tok::kAssign, ":=", start, line_});
            i_ += 2;
            continue;
          }
          return Status::ParseError("expected ':='");
        default:
          return Status::ParseError(std::string("unexpected char '") + c +
                                    "' at " + std::to_string(i_));
      }
    }
    out.push_back({Tok::kEnd, "", src_.size(), line_});
    return out;
  }

 private:
  /// Splits trailing `.postfix` chains off an identifier. `a.mirror` must
  /// lex as IDENT(a) DOT IDENT(mirror), but `select.<=` stays whole.
  void EmitIdentWithPostfix(const std::string& id, size_t start,
                            std::vector<Token>* out) {
    static const char* kPostfix[] = {"mirror", "unique", "hunique",
                                     "semijoin", "join", "select", "kdiff",
                                     "kunion", "kintersect", "sort",
                                     "extent", "mark", "group"};
    // Operator names like select.<= contain '.' but end in symbols; only
    // split when the suffix after the *last* dot is a known postfix word.
    const size_t dot = id.rfind('.');
    if (dot != std::string::npos) {
      const std::string suffix = id.substr(dot + 1);
      for (const char* p : kPostfix) {
        if (suffix == p && dot > 0) {
          EmitIdentWithPostfix(id.substr(0, dot), start, out);
          out->push_back({Tok::kDot, ".", start + dot, line_});
          out->push_back({Tok::kIdent, suffix, start + dot + 1, line_});
          return;
        }
      }
    }
    out->push_back({Tok::kIdent, id, start, line_});
  }

  const std::string& src_;
  size_t i_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<MilProgram> Parse() {
    while (Peek().kind != Tok::kEnd) {
      if (Peek().kind == Tok::kNewline) {
        Next();
        continue;
      }
      MF_RETURN_NOT_OK(ParseStatement());
    }
    return builder_.Finish({});
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  Token Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  Status ParseStatement() {
    // Every statement flattened out of this source line (nested calls,
    // postfix chains) anchors to the line of its first token.
    stmt_line_ = Peek().line;
    std::string var;
    if (Peek().kind == Tok::kIdent && Peek(1).kind == Tok::kAssign) {
      var = Next().text;
      Next();  // :=
    }
    MF_ASSIGN_OR_RETURN(MilArg value, ParseExpr(var));
    if (value.kind != MilArg::Kind::kVar) {
      return Status::ParseError("a statement must produce a variable");
    }
    if (Peek().kind != Tok::kNewline && Peek().kind != Tok::kEnd) {
      return Status::ParseError("trailing tokens after statement near '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  /// Parses an expression; calls become statements. If `bind_to` is
  /// non-empty the outermost call is bound to that name, otherwise to a
  /// fresh temp. Returns the MilArg referring to the value.
  Result<MilArg> ParseExpr(const std::string& bind_to) {
    MF_ASSIGN_OR_RETURN(MilArg primary, ParsePrimary(bind_to));
    // Postfix chain: x.mirror, x.semijoin(y), ...
    while (Peek().kind == Tok::kDot) {
      Next();
      if (Peek().kind != Tok::kIdent) {
        return Status::ParseError("expected operator after '.'");
      }
      const std::string op = Next().text;
      std::vector<MilArg> args{primary};
      if (Peek().kind == Tok::kLParen) {
        Next();
        while (Peek().kind != Tok::kRParen) {
          MF_ASSIGN_OR_RETURN(MilArg a, ParseExpr(""));
          args.push_back(std::move(a));
          if (Peek().kind == Tok::kComma) Next();
        }
        Next();  // ')'
      }
      const bool last = Peek().kind != Tok::kDot;
      const std::string name =
          last && !bind_to.empty() ? bind_to : FreshTemp();
      Bind(name, op, std::move(args));
      primary = V(name);
    }
    return primary;
  }

  Result<MilArg> ParsePrimary(const std::string& bind_to) {
    const Token t = Next();
    switch (t.kind) {
      case Tok::kIdent: {
        if (Peek().kind == Tok::kLParen) {
          // Call: op(args...).
          Next();
          std::vector<MilArg> args;
          while (Peek().kind != Tok::kRParen) {
            MF_ASSIGN_OR_RETURN(MilArg a, ParseExpr(""));
            args.push_back(std::move(a));
            if (Peek().kind == Tok::kComma) Next();
          }
          Next();  // ')'
          const bool last = Peek().kind != Tok::kDot;
          const std::string name =
              last && !bind_to.empty() ? bind_to : FreshTemp();
          Bind(name, t.text, std::move(args));
          return V(name);
        }
        if (t.text == "true") return L(Value::Bit(true));
        if (t.text == "false") return L(Value::Bit(false));
        return V(t.text);
      }
      case Tok::kInt:
        return L(Value::Int(std::atoi(t.text.c_str())));
      case Tok::kFloat:
        return L(Value::Dbl(std::atof(t.text.c_str())));
      case Tok::kChar:
        return L(Value::Chr(t.text[0]));
      case Tok::kString: {
        Date d;
        if (t.text.size() == 10 && Date::Parse(t.text, &d)) {
          return L(Value::MakeDate(d));
        }
        return L(Value::Str(t.text));
      }
      default:
        return Status::ParseError("unexpected token '" + t.text + "' at " +
                                  std::to_string(t.pos));
    }
  }

  std::string FreshTemp() { return "_t" + std::to_string(++temps_); }

  /// builder_.Let with the current statement's source line stamped on.
  void Bind(const std::string& name, std::string op,
            std::vector<MilArg> args) {
    builder_.Let(name, std::move(op), std::move(args));
    builder_.program().stmts.back().line = stmt_line_;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  int temps_ = 0;
  int stmt_line_ = 1;
  MilBuilder builder_;
};

}  // namespace

Result<MilProgram> ParseMil(const std::string& text) {
  Lexer lexer(text);
  MF_ASSIGN_OR_RETURN(std::vector<Token> toks, lexer.Lex());
  Parser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace moaflat::mil
