#include "mil/interpreter.h"

#include <chrono>
#include <cstdio>
#include <new>
#include <sstream>

#include "kernel/exec_tracer.h"
#include "kernel/scalar_fn.h"
#include "mil/analyzer.h"

namespace moaflat::mil {
namespace {

using bat::Bat;
using kernel::AggKind;
using kernel::CmpOp;

Result<AggKind> ParseAgg(const std::string& name) {
  if (name == "sum") return AggKind::kSum;
  if (name == "count") return AggKind::kCount;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return Status::ParseError("unknown aggregate '" + name + "'");
}

bool IsSetAggOp(const std::string& op) {
  return op.size() > 2 && op.front() == '{' && op.back() == '}';
}

bool IsMultiplexOp(const std::string& op) {
  return op.size() > 2 && op.front() == '[' && op.back() == ']';
}

}  // namespace

Result<Bat> MilEnv::GetBat(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return Status::KeyError("undefined MIL variable '" + name + "'");
  }
  if (const Bat* b = std::get_if<Bat>(&it->second)) return *b;
  return Status::TypeError("MIL variable '" + name + "' is a scalar");
}

Result<Value> MilEnv::GetValue(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return Status::KeyError("undefined MIL variable '" + name + "'");
  }
  if (const Value* v = std::get_if<Value>(&it->second)) return *v;
  return Status::TypeError("MIL variable '" + name + "' is a BAT");
}

Status MilInterpreter::Run(const MilProgram& program) {
  // Static analysis gate: an ill-formed program is rejected before any
  // statement executes — no binding committed, no page touched, no trace
  // emitted. Hygiene warnings do not block.
  AnalysisReport report = AnalyzeProgram(program, *env_);
  if (!report.ok()) {
    return Status::TypeError("program rejected by static analysis:\n" +
                             report.DiagnosticsString());
  }
  for (const MilStmt& stmt : program.stmts) {
    MF_RETURN_NOT_OK(Exec(stmt));
  }
  return Status::OK();
}

Status MilInterpreter::Exec(const MilStmt& stmt) {
  if (hook_) MF_RETURN_NOT_OK(hook_(stmt));
  // The session context (explicit, or a per-statement snapshot of the
  // legacy thread-local scopes); the statement runs under a copy with a
  // local tracer so the per-statement implementation choices can be
  // reported even when the session has no tracer of its own.
  const kernel::ExecContext base =
      ctx_ != nullptr ? *ctx_ : kernel::ExecContext::FromThreadLocals();
  kernel::ExecTracer local_tracer;
  kernel::ExecContext stmt_ctx = base;
  stmt_ctx.WithTracer(&local_tracer);

  // The statement boundary is the interpreter's own interruption point: a
  // cancelled or timed-out query never starts its next statement, and a
  // latched (possibly injected) IO error surfaces here instead of being
  // silently absorbed between operators.
  MF_RETURN_NOT_OK(base.CheckInterrupt());

  storage::IoStats* io = base.io();
  const uint64_t faults_before = io ? io->faults() : 0;
  const uint64_t charged_before = base.memory_charged();
  const auto start = std::chrono::steady_clock::now();

  size_t out_size = 0;

  // Scalar calculations (`calc.*`) and scalar aggregates bind a Value;
  // everything else binds a BAT. The whole statement body runs under one
  // failure boundary: on any non-OK status (budget veto, cancel, injected
  // fault) or allocation failure, no binding is committed and every byte
  // the statement charged for its discarded partial results is refunded,
  // so the session's balance is exactly what it was before the statement
  // and the next query runs bit-identically.
  auto run_stmt = [&]() -> Status {
    auto agg = ParseAgg(stmt.op);
    if (stmt.op.rfind("calc.", 0) == 0) {
      MF_RETURN_NOT_OK(ExecScalarCalc(stmt));
      out_size = 1;
    } else if (agg.ok() && stmt.args.size() == 1) {
      MF_ASSIGN_OR_RETURN(Bat in, env_->GetBat(stmt.args[0].var));
      MF_ASSIGN_OR_RETURN(Value v,
                          kernel::ScalarAggregate(stmt_ctx, *agg, in));
      env_->BindValue(stmt.var, v);
      out_size = 1;
    } else {
      MF_ASSIGN_OR_RETURN(Bat out, EvalBatOp(stmt_ctx, stmt));
      out_size = out.size();
      env_->BindBat(stmt.var, std::move(out));
    }
    return Status::OK();
  };
  Status stmt_status;
  try {
    stmt_status = run_stmt();
  } catch (const std::bad_alloc&) {
    stmt_status = Status::ResourceExhausted(
        "allocation failed while evaluating '" + stmt.op + "'");
  }
  if (!stmt_status.ok()) {
    const uint64_t charged_now = base.memory_charged();
    if (charged_now > charged_before) {
      base.ReleaseMemory(charged_now - charged_before);
    }
    return stmt_status;
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  std::string impls;
  for (const kernel::TraceRecord& r : local_tracer.records) {
    if (!impls.empty()) impls += "+";
    impls += r.impl;
  }
  // Forward the statement's records to the session tracer so a context
  // that traces a whole query sees every operator call.
  if (base.tracer() != nullptr) {
    base.tracer()->records.insert(base.tracer()->records.end(),
                                  local_tracer.records.begin(),
                                  local_tracer.records.end());
  }
  traces_.push_back(StmtTrace{
      stmt.ToString(),
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(),
      (io ? io->faults() : 0) - faults_before, out_size, impls});
  return Status::OK();
}

Result<Bat> MilInterpreter::EvalBatOp(const kernel::ExecContext& ctx,
                                      const MilStmt& stmt) {
  const std::string& op = stmt.op;
  auto arg_bat = [&](size_t i) -> Result<Bat> {
    if (i >= stmt.args.size()) {
      return Status::Invalid("missing argument " + std::to_string(i) +
                             " of " + op);
    }
    if (stmt.args[i].kind != MilArg::Kind::kVar) {
      return Status::Invalid("argument " + std::to_string(i) + " of " + op +
                             " must be a BAT variable");
    }
    return env_->GetBat(stmt.args[i].var);
  };
  auto arg_val = [&](size_t i) -> Result<Value> {
    if (i >= stmt.args.size()) {
      return Status::Invalid("missing argument " + std::to_string(i) +
                             " of " + op);
    }
    if (stmt.args[i].kind == MilArg::Kind::kLit) return stmt.args[i].lit;
    return env_->GetValue(stmt.args[i].var);
  };

  if (IsMultiplexOp(op)) {
    const std::string fn = op.substr(1, op.size() - 2);
    std::vector<kernel::MxArg> margs;
    for (const MilArg& a : stmt.args) {
      if (a.kind == MilArg::Kind::kLit) {
        margs.emplace_back(a.lit);
      } else if (env_->Has(a.var)) {
        // A variable may hold a BAT or a scalar aggregate result.
        auto as_bat = env_->GetBat(a.var);
        if (as_bat.ok()) {
          margs.emplace_back(*as_bat);
        } else {
          MF_ASSIGN_OR_RETURN(Value v, env_->GetValue(a.var));
          margs.emplace_back(std::move(v));
        }
      } else {
        return Status::KeyError("undefined MIL variable '" + a.var + "'");
      }
    }
    return kernel::Multiplex(ctx, fn, margs);
  }

  if (IsSetAggOp(op)) {
    MF_ASSIGN_OR_RETURN(AggKind kind, ParseAgg(op.substr(1, op.size() - 2)));
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::SetAggregate(ctx, kind, in);
  }

  if (op == "select") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    if (stmt.args.size() == 2) {
      MF_ASSIGN_OR_RETURN(Value v, arg_val(1));
      return kernel::Select(ctx, in, v);
    }
    MF_ASSIGN_OR_RETURN(Value lo, arg_val(1));
    MF_ASSIGN_OR_RETURN(Value hi, arg_val(2));
    return kernel::SelectRange(ctx, in, lo, hi);
  }
  if (op.rfind("select.", 0) == 0) {
    const std::string cmp = op.substr(7);
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    if (cmp == "like") {
      MF_ASSIGN_OR_RETURN(Value v, arg_val(1));
      if (v.type() != MonetType::kStr) {
        return Status::TypeError("select.like needs a string pattern");
      }
      return kernel::SelectLike(ctx, in, v.AsStr());
    }
    CmpOp c;
    if (cmp == "!=") {
      c = CmpOp::kNe;
    } else if (cmp == "<") {
      c = CmpOp::kLt;
    } else if (cmp == "<=") {
      c = CmpOp::kLe;
    } else if (cmp == ">") {
      c = CmpOp::kGt;
    } else if (cmp == ">=") {
      c = CmpOp::kGe;
    } else {
      return Status::ParseError("unknown select comparator '" + cmp + "'");
    }
    MF_ASSIGN_OR_RETURN(Value v, arg_val(1));
    return kernel::SelectCmp(ctx, in, c, v);
  }

  if (op == "join" || op == "semijoin" || op == "kdiff" || op == "kunion" ||
      op == "kintersect") {
    MF_ASSIGN_OR_RETURN(Bat left, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Bat right, arg_bat(1));
    if (op == "join") return kernel::Join(ctx, left, right);
    if (op == "semijoin") return kernel::Semijoin(ctx, left, right);
    if (op == "kdiff") return kernel::Diff(ctx, left, right);
    if (op == "kunion") return kernel::Union(ctx, left, right);
    return kernel::Intersect(ctx, left, right);
  }

  if (op.rfind("thetajoin.", 0) == 0) {
    const std::string cmp = op.substr(10);
    MF_ASSIGN_OR_RETURN(Bat left, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Bat right, arg_bat(1));
    CmpOp c;
    if (cmp == "<") {
      c = CmpOp::kLt;
    } else if (cmp == "<=") {
      c = CmpOp::kLe;
    } else if (cmp == ">") {
      c = CmpOp::kGt;
    } else if (cmp == ">=") {
      c = CmpOp::kGe;
    } else if (cmp == "!=") {
      c = CmpOp::kNe;
    } else {
      return Status::ParseError("unknown theta comparator '" + cmp + "'");
    }
    return kernel::ThetaJoin(ctx, left, right, c);
  }
  if (op == "fetch") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Bat pos, arg_bat(1));
    return kernel::Fetch(ctx, in, pos);
  }
  if (op == "insert") {
    // insert(b, h, t): a new BAT = b plus the BUN [h, t] (columns are
    // immutable, so the "mutation" materializes a fresh binding — which is
    // exactly what the WAL logs when a durable session commits one).
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Value h, arg_val(1));
    MF_ASSIGN_OR_RETURN(Value t, arg_val(2));
    return kernel::InsertBuns(ctx, in, {std::move(h)}, {std::move(t)});
  }
  if (op == "histogram") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::Histogram(ctx, in);
  }
  if (op == "mirror") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return in.Mirror();
  }
  if (op == "unique") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::Unique(ctx, in);
  }
  if (op == "hunique") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::HeadUnique(ctx, in);
  }
  if (op == "group") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    if (stmt.args.size() == 1) return kernel::Group(ctx, in);
    MF_ASSIGN_OR_RETURN(Bat refine, arg_bat(1));
    return kernel::GroupRefine(ctx, in, refine);
  }
  if (op == "mark") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Value base, arg_val(1));
    MF_ASSIGN_OR_RETURN(Value oid_base, base.CastTo(MonetType::kOidT));
    return kernel::Mark(ctx, in, oid_base.AsOid());
  }
  if (op == "extent") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::VoidTail(ctx, in);
  }
  if (op == "slice") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Value lo, arg_val(1));
    MF_ASSIGN_OR_RETURN(Value hi, arg_val(2));
    MF_ASSIGN_OR_RETURN(Value lo_i, lo.CastTo(MonetType::kLng));
    MF_ASSIGN_OR_RETURN(Value hi_i, hi.CastTo(MonetType::kLng));
    return kernel::Slice(ctx, in, static_cast<size_t>(lo_i.AsLng()),
                         static_cast<size_t>(hi_i.AsLng()));
  }
  if (op == "sort") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    return kernel::SortTail(ctx, in);
  }
  if (op == "topn_max" || op == "topn_min") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Value n, arg_val(1));
    MF_ASSIGN_OR_RETURN(Value n_i, n.CastTo(MonetType::kLng));
    return kernel::TopN(ctx, in, static_cast<size_t>(n_i.AsLng()),
                        op == "topn_max");
  }
  if (op == "project") {
    MF_ASSIGN_OR_RETURN(Bat in, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Value v, arg_val(1));
    return kernel::ProjectConst(ctx, in, v);
  }
  if (op == "append") {
    MF_ASSIGN_OR_RETURN(Bat left, arg_bat(0));
    MF_ASSIGN_OR_RETURN(Bat right, arg_bat(1));
    return kernel::Append(ctx, left, right);
  }

  return Status::NotImplemented("unknown MIL operator '" + op + "'");
}

Status MilInterpreter::ExecScalarCalc(const MilStmt& stmt) {
  const std::string fn = stmt.op.substr(5);
  std::vector<Value> args;
  for (const MilArg& a : stmt.args) {
    if (a.kind == MilArg::Kind::kLit) {
      args.push_back(a.lit);
    } else {
      MF_ASSIGN_OR_RETURN(Value v, env_->GetValue(a.var));
      args.push_back(std::move(v));
    }
  }
  MF_ASSIGN_OR_RETURN(Value out, kernel::ScalarApply(fn, args));
  env_->BindValue(stmt.var, std::move(out));
  return Status::OK();
}

std::string MilInterpreter::TraceString() const {
  std::ostringstream os;
  os << "elapsed-ms    faults   #out  statement  [impl]\n";
  for (const StmtTrace& t : traces_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.3f %9llu %6zu  ",
                  t.elapsed_us / 1000.0,
                  static_cast<unsigned long long>(t.faults), t.out_size);
    os << buf << t.text;
    if (!t.impl.empty()) os << "  [" << t.impl << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace moaflat::mil
