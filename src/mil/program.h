#ifndef MOAFLAT_MIL_PROGRAM_H_
#define MOAFLAT_MIL_PROGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace moaflat::mil {

/// One argument of a MIL statement: a variable reference or a literal.
struct MilArg {
  enum class Kind { kVar, kLit };
  Kind kind = Kind::kVar;
  std::string var;
  Value lit;

  static MilArg Var(std::string name) {
    MilArg a;
    a.kind = Kind::kVar;
    a.var = std::move(name);
    return a;
  }
  static MilArg Lit(Value v) {
    MilArg a;
    a.kind = Kind::kLit;
    a.lit = std::move(v);
    return a;
  }

  std::string ToString() const {
    return kind == Kind::kVar ? var : lit.ToString();
  }
};

/// Shorthand constructors used throughout the rewriter and tests.
inline MilArg V(std::string name) { return MilArg::Var(std::move(name)); }
inline MilArg L(Value v) { return MilArg::Lit(std::move(v)); }

/// One MIL statement `var := op(args...)`. Operator vocabulary (Fig. 4):
///
///   select            point (1 lit) or range (2 lits) selection on tail
///   select.!= .< .<= .> .>=      comparison selections
///   select.like       SQL-pattern selection on str tails
///   join semijoin kdiff kunion kintersect    binary table ops
///   mirror unique group mark extent slice sort    reshaping
///   topn_max topn_min             top-k by tail value
///   project           constant tail: project(v, lit)
///   [f]               multiplex (any scalar f; args are BATs/literals)
///   {sum} {count} {avg} {min} {max}   set-aggregates (grouped by head)
///   sum count avg min max             scalar aggregates (whole tail)
struct MilStmt {
  std::string var;
  std::string op;
  std::vector<MilArg> args;
  /// 1-based source line of the statement; every statement flattened out of
  /// one source line shares it, so analyzer diagnostics anchor to the text
  /// the user actually wrote. 0 = unknown (hand-built programs).
  int line = 0;

  /// Renders like the paper's Fig. 10, e.g.
  /// `orders := select(Order_clerk, "Clerk#000000088")`.
  std::string ToString() const;
};

/// A straight-line MIL program plus the names of its result BATs (the
/// operands of the result structure expression, Section 4.3).
struct MilProgram {
  std::vector<MilStmt> stmts;
  std::vector<std::string> results;

  std::string ToString() const;
};

/// Convenience builder that generates fresh temp names (t1, t2, ...).
class MilBuilder {
 public:
  /// Appends `name := op(args...)` with an explicit result name.
  const std::string& Let(std::string name, std::string op,
                         std::vector<MilArg> args);

  /// Appends a statement with a generated temp name; returns the name.
  const std::string& Temp(std::string op, std::vector<MilArg> args);

  MilProgram Finish(std::vector<std::string> results) {
    program_.results = std::move(results);
    return std::move(program_);
  }

  MilProgram& program() { return program_; }

 private:
  MilProgram program_;
  int next_temp_ = 0;
};

}  // namespace moaflat::mil

#endif  // MOAFLAT_MIL_PROGRAM_H_
