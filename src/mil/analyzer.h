#ifndef MOAFLAT_MIL_ANALYZER_H_
#define MOAFLAT_MIL_ANALYZER_H_

#include <vector>

#include "mil/analysis_types.h"
#include "mil/interpreter.h"
#include "mil/program.h"

/// The MIL static analyzer: a pass over a parsed program that runs before
/// interpretation and admission. Three cooperating analyses:
///
///  1. Semantic checking — name resolution against the environment
///     catalog, use-before-def, arity and operator applicability, and BAT
///     head/tail type inference through every operator the interpreter
///     supports. Violations become line-anchored error Diagnostics instead
///     of mid-execution failures.
///  2. Abstract cardinality/cost interval analysis — a [lo, hi]
///     cardinality interval per binding, propagated through the statement
///     DAG (catalog-bound operands seeded exactly, selects narrowed by the
///     two-probe kernel::EstimateSelectivity), and a Section 5.2.2
///     fault-cost interval per statement. Admission vetoes compare against
///     the hi bound, which is sound: no execution can cost more.
///  3. Program hygiene — dead bindings, shadowed rebinds and statically
///     empty results, as warnings.
///
/// The analyzer never executes a statement, builds no accelerator and
/// touches no page.
namespace moaflat::mil {

/// Analyzes `program` against the bindings of `env`. Always returns a
/// report; report.ok() says whether execution may proceed.
AnalysisReport AnalyzeProgram(const MilProgram& program, const MilEnv& env);

/// Result-binding names of a program: the declared results, or — matching
/// the executor's exposure rule for programs without a result clause — the
/// name of every statement.
std::vector<std::string> ResultNames(const MilProgram& program);

}  // namespace moaflat::mil

#endif  // MOAFLAT_MIL_ANALYZER_H_
