#ifndef MOAFLAT_MIL_ANALYSIS_TYPES_H_
#define MOAFLAT_MIL_ANALYSIS_TYPES_H_

#include <map>
#include <string>
#include <vector>

#include "bat/bat.h"
#include "common/types.h"

/// Result types of the MIL static analyzer (mil/analyzer.h): line-anchored
/// diagnostics, abstract bindings (inferred BAT schemas plus cardinality
/// intervals), and per-statement fault-cost intervals. These are what the
/// interpreter gate, the admission pricer and the wire CHECK verb consume.
namespace moaflat::mil {

enum class Severity { kWarning, kError };

/// One finding of the static analyzer, anchored to the source line of the
/// statement it is about. Errors reject the program before anything
/// executes; warnings (program hygiene) ride along in reports.
struct Diagnostic {
  Severity severity = Severity::kError;
  int line = 0;       // 1-based statement source line; 0 = whole program
  std::string var;    // binding the offending statement defines (may be "")
  std::string message;

  /// "line 3: error: unknown MIL variable 'foo'"
  std::string ToString() const;
};

/// [lo, hi] result-cardinality interval of a binding: every execution of
/// the analyzed program yields a cardinality inside it.
struct CardInterval {
  double lo = 0;
  double hi = 0;
};

/// What the analyzer proved about one binding without executing anything:
/// its shape (BAT column types or scalar type), the cardinality interval,
/// and the provable head-key property (the lever that keeps equi-join
/// upper bounds linear instead of quadratic).
struct AbstractBinding {
  enum class Kind { kBat, kScalar, kUnknown };
  Kind kind = Kind::kUnknown;
  MonetType head = MonetType::kVoid;    // kBat: inferred head type
  MonetType tail = MonetType::kVoid;    // kBat: inferred tail type
  MonetType scalar = MonetType::kVoid;  // kScalar: value type
  CardInterval card;
  bool head_key = false;  // head values provably unique
  /// Catalog binding behind this name, when the name resolves to a BAT of
  /// the session environment: seeds exact cardinalities, real dispatch
  /// views and two-probe selectivity estimates. Null for derived results.
  const bat::Bat* bound = nullptr;

  /// "[void,str] rows in [1500, 1500]" / "dbl scalar"
  std::string ToString() const;
};

/// Per-statement record: the inferred result and the Section 5.2.2
/// fault-cost interval of the statement (cheapest applicable variant priced
/// over the lo- and hi-cardinality operand views, cold cache). The hi end
/// is a sound per-run bound — no execution faults more. The lo end is the
/// optimistic per-statement estimate: pages shared across statements are
/// charged once at run time, so a warm multi-statement run can measure
/// below the per-statement sum of lo ends.
struct StmtInfo {
  int line = 0;
  std::string var;
  std::string text;
  AbstractBinding result;
  double faults_lo = 0;
  double faults_hi = 0;
};

/// The full analyzer verdict over one program: semantic + hygiene
/// diagnostics, per-statement inference, and the final abstract bindings
/// (the inferred result schema).
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<StmtInfo> stmts;
  std::map<std::string, AbstractBinding> bindings;
  int errors = 0;
  int warnings = 0;

  /// No error-severity diagnostics: the program may execute.
  bool ok() const { return errors == 0; }

  /// All diagnostics, one per line.
  std::string DiagnosticsString() const;
  /// First error rendered, or "" when ok(); the one-line veto reason.
  std::string FirstError() const;
  /// The inferred schema of `names` (result bindings), one per line.
  std::string SchemaString(const std::vector<std::string>& names) const;
};

}  // namespace moaflat::mil

#endif  // MOAFLAT_MIL_ANALYSIS_TYPES_H_
