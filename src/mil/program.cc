#include "mil/program.h"

#include <sstream>

namespace moaflat::mil {

std::string MilStmt::ToString() const {
  std::ostringstream os;
  if (!var.empty()) os << var << " := ";
  // Multiplex and set-aggregate constructors print prefix, like the paper:
  // `[year](critems)`, `{sum}(losses)`.
  os << op << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i].ToString();
  }
  os << ")";
  return os.str();
}

std::string MilProgram::ToString() const {
  std::ostringstream os;
  for (const MilStmt& s : stmts) os << s.ToString() << "\n";
  if (!results.empty()) {
    os << "# results:";
    for (const std::string& r : results) os << " " << r;
    os << "\n";
  }
  return os.str();
}

const std::string& MilBuilder::Let(std::string name, std::string op,
                                   std::vector<MilArg> args) {
  // Programmatic statements render one per line (ToString), so the ordinal
  // doubles as the line anchor for analyzer diagnostics; the parser
  // overwrites it with the true source line.
  const int line = static_cast<int>(program_.stmts.size()) + 1;
  program_.stmts.push_back(
      MilStmt{std::move(name), std::move(op), std::move(args), line});
  return program_.stmts.back().var;
}

const std::string& MilBuilder::Temp(std::string op,
                                    std::vector<MilArg> args) {
  return Let("t" + std::to_string(++next_temp_), std::move(op),
             std::move(args));
}

}  // namespace moaflat::mil
