#ifndef MOAFLAT_MIL_PARSER_H_
#define MOAFLAT_MIL_PARSER_H_

#include <string>

#include "common/result.h"
#include "mil/program.h"

namespace moaflat::mil {

/// Parses textual MIL, the Monet Interface Language as printed in the
/// paper's Fig. 10. Each line is `var := expr` (or a bare expr, bound to a
/// generated temp); `#` starts a comment. Expressions:
///
///   orders := select(Order_clerk, "Clerk#000000088")
///   items  := join(Item_order, orders)
///   years  := [year](join(critems, Order_orderdate))     # nested calls
///   INDEX  := join(ritems.mirror, class).unique          # postfix ops
///   LOSS   := {sum}(losses)
///
/// Nested calls and postfix applications (`x.mirror`, `x.semijoin(y)`,
/// `.unique`) are flattened into temporary statements, so the resulting
/// MilProgram is straight-line, as the interpreter expects.
///
/// Literals: integers, floats, 'c' characters, "strings",
/// "YYYY-MM-DD" dates, true/false.
Result<MilProgram> ParseMil(const std::string& text);

}  // namespace moaflat::mil

#endif  // MOAFLAT_MIL_PARSER_H_
